// E19 — pipelined multi-shot engine vs the serial database.
//
// DistributedDb::execute commits one transaction at a time: the whole
// database blocks on each commit instance's network round-trips. MultiShotDb
// pipelines independent commit instances per shard, so with concurrent
// clients the network latency overlaps and committed-transaction throughput
// scales. This bench sweeps shard count × client concurrency over a threaded
// network with 50-500us link delays — both engines pay the same links — and
// gates two claims:
//
//   multishot_5x_serial   ≥5× the serial committed-txn throughput at
//                         concurrency ≥64 (the tentpole speedup bound)
//   multishot_atomicity   zero cross-shard atomicity violations anywhere in
//                         the sweep (§1 "at all processors or at none")
//
// RCOMMIT_LINT_ALLOW_FILE(R2): the client fleet is real threads by design —
// wall-clock throughput over the threaded transport is the measurement
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/stats.h"
#include "db/multishot.h"
#include "db/txn.h"
#include "metrics/report.h"

namespace {

using namespace rcommit;
namespace fs = std::filesystem;

// Slower links than E11's 30-300us: the serial engine pays every
// microsecond of link latency per transaction, while the pipeline overlaps
// it — WAN-ish delays are exactly where multi-shot pipelining earns its keep.
constexpr std::chrono::microseconds kMinDelay(50);
constexpr std::chrono::microseconds kMaxDelay(500);

fs::path scratch_dir(const std::string& tag) {
  return fs::temp_directory_path() /
         ("rcommit_bench_multishot_" + std::to_string(::getpid()) + "_" + tag);
}

/// Serial baseline: DistributedDb, one cross-shard transaction at a time.
double run_serial(int txns, uint64_t seed) {
  const fs::path dir = scratch_dir("serial");
  fs::remove_all(dir);
  db::DistributedDb::Options options;
  options.shard_count = 3;
  options.data_dir = dir;
  options.seed = seed;
  options.network = {.min_delay = kMinDelay, .max_delay = kMaxDelay};
  db::DistributedDb database(options);

  int committed = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < txns; ++i) {
    const int a = i % 3;
    const int b = (a + 1) % 3;
    const std::string key = "k" + std::to_string(i);
    const auto outcome = database.execute({{a, {{key, "x"}}}, {b, {{key, "x"}}}});
    if (outcome.decided && outcome.decision == Decision::kCommit) ++committed;
  }
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::error_code ec;
  fs::remove_all(dir, ec);
  return static_cast<double>(committed) / elapsed;
}

struct CellResult {
  db::MultiShotStats stats;
  db::WalStats wal;
  int64_t atomicity_violations = 0;
  double committed_per_sec = 0.0;
  Samples latency_us;  ///< wall-clock per execute() call, all clients merged
};

/// One sweep cell: `clients` threads issue cross-shard transactions through
/// one MultiShotDb over the threaded network. Every transaction writes one
/// unique key to two shards; the post-run read-back counts transactions
/// visible on one shard but not the other.
CellResult run_cell(int32_t shards, int clients, int txns_per_client,
                    uint64_t seed) {
  const fs::path dir =
      scratch_dir(std::to_string(shards) + "s" + std::to_string(clients) + "c");
  fs::remove_all(dir);
  db::MultiShotDb::Options options;
  options.shard_count = shards;
  options.data_dir = dir;
  options.seed = seed;
  options.decision_transport = db::DecisionTransport::kThreadedNetwork;
  options.network = {.min_delay = kMinDelay, .max_delay = kMaxDelay};
  options.max_concurrent_rounds = 16;  // deep enough to cover the link sleeps
  db::MultiShotDb database(options);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> fleet;
  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  fleet.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      auto& mine = latencies[static_cast<size_t>(c)];
      mine.reserve(static_cast<size_t>(txns_per_client));
      for (int i = 0; i < txns_per_client; ++i) {
        const int32_t a = static_cast<int32_t>(c % shards);
        const int32_t b = static_cast<int32_t>((a + 1 + i % (shards - 1)) % shards);
        const std::string key =
            "c" + std::to_string(c) + ":k" + std::to_string(i);
        const auto txn_start = std::chrono::steady_clock::now();
        (void)database.execute(a, {{a, {{key, "x"}}}, {b, {{key, "x"}}}});
        mine.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - txn_start)
                           .count());
      }
    });
  }
  for (auto& thread : fleet) thread.join();
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  CellResult cell;
  cell.stats = database.stats();
  cell.wal = database.wal_stats();
  for (const auto& mine : latencies) {
    for (const double sample : mine) cell.latency_us.add(sample);
  }
  cell.committed_per_sec = static_cast<double>(cell.stats.committed) / elapsed;
  // Quiescent read-back: a committed transaction's key is on both shards or
  // neither — a one-sided install is an atomicity violation.
  for (int c = 0; c < clients; ++c) {
    for (int i = 0; i < txns_per_client; ++i) {
      const int32_t a = static_cast<int32_t>(c % shards);
      const int32_t b = static_cast<int32_t>((a + 1 + i % (shards - 1)) % shards);
      const std::string key = "c" + std::to_string(c) + ":k" + std::to_string(i);
      const bool on_a = database.get(a, key).has_value();
      const bool on_b = database.get(b, key).has_value();
      if (on_a != on_b) ++cell.atomicity_violations;
    }
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
  return cell;
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int serial_txns = ctx.runs(40, /*quick_floor=*/10);
  const int txns_per_client = ctx.runs(8, /*quick_floor=*/3);

  ctx.out() << "E19: pipelined multi-shot engine vs serial DistributedDb,\n"
            << "threaded network with 50-500us delays, WAL-backed shards,\n"
            << serial_txns << " serial txns; " << txns_per_client
            << " txns per client in the sweep\n\n";

  const double serial_tps = run_serial(serial_txns, ctx.derive_seed(19));
  ctx.out() << "serial DistributedDb baseline: " << Table::num(serial_tps, 1)
            << " committed txn/s (3 shards)\n\n";
  ctx.scalar("serial_txn_per_sec", serial_tps, "txn/s");

  Table table({"shards", "clients", "committed", "conflict aborts", "in doubt",
               "atomicity violations", "txn/sec", "vs serial", "p50 us",
               "p99 us", "wal rec/flush"});
  int64_t total_violations = 0;
  int64_t total_in_doubt = 0;
  double best_speedup_64 = 0.0;
  double p50_at_64 = 0.0;
  double p99_at_64 = 0.0;
  double rec_per_flush = 0.0;
  for (const int32_t shards : {3, 5}) {
    for (const int clients : {1, 8, 64}) {
      const auto cell = run_cell(shards, clients, txns_per_client,
                                 ctx.derive_seed(19 + static_cast<uint64_t>(clients)));
      const double speedup = cell.committed_per_sec / serial_tps;
      table.row({Table::num(static_cast<int64_t>(shards)),
                 Table::num(static_cast<int64_t>(clients)),
                 Table::num(cell.stats.committed),
                 Table::num(cell.stats.conflict_aborts),
                 Table::num(cell.stats.in_doubt),
                 Table::num(cell.atomicity_violations),
                 Table::num(cell.committed_per_sec, 1),
                 Table::num(speedup, 2) + "x",
                 Table::num(cell.latency_us.percentile(0.50), 0),
                 Table::num(cell.latency_us.percentile(0.99), 0),
                 Table::num(cell.wal.records_per_flush(), 2)});
      total_violations += cell.atomicity_violations;
      total_in_doubt += cell.stats.in_doubt;
      rec_per_flush = cell.wal.records_per_flush();
      if (clients >= 64) {
        best_speedup_64 = std::max(best_speedup_64, speedup);
        p50_at_64 = cell.latency_us.percentile(0.50);
        p99_at_64 = cell.latency_us.percentile(0.99);
      }
    }
  }
  ctx.table("multishot_sweep", table);
  ctx.scalar("speedup_at_64_clients", best_speedup_64, "x");
  ctx.scalar("atomicity_violations", static_cast<double>(total_violations));
  // Ungated observability: wall-clock commit latency at the deepest cell and
  // the WAL amortization factor (1.0 here — E19 runs the ungrouped engine;
  // E20 owns the grouped claims).
  ctx.scalar("commit_latency_p50_us_64c", p50_at_64, "us");
  ctx.scalar("commit_latency_p99_us_64c", p99_at_64, "us");
  ctx.scalar("wal_records_per_flush", rec_per_flush);

  ctx.claim({"multishot_5x_serial",
             "pipelined commit instances overlap network latency: >=5x the "
             "serial engine's committed-txn throughput at concurrency >=64",
             Table::num(best_speedup_64, 2) + "x at 64 clients",
             best_speedup_64 >= 5.0});
  ctx.claim({"multishot_atomicity",
             "transactions install at all processors or at none (§1), at "
             "every point of the shard x concurrency sweep",
             std::to_string(total_violations) + " violations, " +
                 std::to_string(total_in_doubt) + " in doubt",
             total_violations == 0});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E19", "bench_db_multishot",
       "multi-shot pipelined engine: shard x concurrency throughput sweep",
       {"multishot_5x_serial", "multishot_atomicity"}},
      body);
}
