// E12 — abort behaviour under lock contention.
//
// The commit protocol's abort-validity path in production clothing: as key
// skew concentrates writes on hot keys, shards increasingly fail to lock at
// prepare time and vote abort; Protocol 2 then aborts the transaction on
// *every* involved shard. The experiment verifies that rising contention
// changes only the commit/abort mix — never atomicity.
//
// Transactions here execute sequentially, so conflicts arise from in-doubt
// leftovers... they do not: sequential execution releases locks between
// transactions. To create conflicts we deliberately leave a fraction of
// "blocker" transactions prepared-but-undecided (exactly the in-doubt state
// crashes produce), which is both realistic and deterministic.
#include <filesystem>

#include "bench/harness.h"
#include "common/stats.h"
#include "db/txn.h"
#include "db/workload.h"
#include "metrics/report.h"

namespace {

using namespace rcommit;
namespace fs = std::filesystem;

struct ContentionStats {
  int committed = 0;
  int aborted = 0;
  int atomicity_violations = 0;
};

ContentionStats run_skew(double skew, int txns, uint64_t seed) {
  const fs::path dir = fs::temp_directory_path() /
                       ("rcommit_bench_contention_" + std::to_string(::getpid()) +
                        "_" + std::to_string(static_cast<int>(skew * 10)));
  fs::remove_all(dir);
  fs::create_directories(dir);

  db::DistributedDb::Options options;
  options.shard_count = 4;
  options.data_dir = dir;
  options.seed = seed;
  options.network = {.min_delay = std::chrono::microseconds(20),
                     .max_delay = std::chrono::microseconds(150)};
  db::DistributedDb database(options);

  db::WorkloadOptions wopts;
  wopts.shard_count = 4;
  wopts.keys_per_shard = 40;
  wopts.fanout = 2;
  wopts.writes_per_shard = 2;
  wopts.skew = skew;
  db::WorkloadGenerator workload(wopts, seed + 17);

  // Plant blockers: prepared-but-undecided transactions pinning hot keys on
  // each shard (the state a crashed coordinator leaves behind).
  for (int32_t s = 0; s < 4; ++s) {
    (void)database.shard(s).prepare(
        900'000 + s, {{"key:0", "blocked"}, {"key:1", "blocked"}});
  }

  ContentionStats stats;
  for (int i = 0; i < txns; ++i) {
    const auto txn = workload.next();
    const auto outcome = database.execute(txn);
    if (!outcome.decided) continue;
    (outcome.decision == Decision::kCommit ? stats.committed : stats.aborted) += 1;
    // Atomicity check, immediately after the sequential execute: every write
    // of a txn stores the same unique value ("txn-<counter>"), so a commit
    // must leave all of them visible and an abort none of them.
    int installed = 0;
    int total = 0;
    for (const auto& [shard, writes] : txn) {
      for (const auto& write : writes) {
        ++total;
        const auto value = database.get(shard, write.key);
        if (value.has_value() && *value == write.value) ++installed;
      }
    }
    const bool all_or_nothing = installed == 0 || installed == total;
    const bool matches_outcome =
        (outcome.decision == Decision::kCommit) == (installed == total);
    if (!all_or_nothing || !matches_outcome) ++stats.atomicity_violations;
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
  return stats;
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int txns = ctx.runs(120, /*quick_floor=*/40);

  ctx.out() << "E12: contention sweep — 4 shards, fanout 2, hot keys pinned by "
               "in-doubt blockers,\n"
            << txns << " transactions per row, Protocol 2 backend\n\n";

  Table table({"key skew", "committed", "aborted", "abort rate", "atomicity violations"});
  bool aborts_rise = true;
  int prev_aborts = -1;
  bool atomic = true;
  for (double skew : {0.0, 1.0, 2.0, 4.0}) {
    const auto stats = run_skew(skew, txns, ctx.derive_seed(11));
    const double rate =
        static_cast<double>(stats.aborted) /
        std::max(1, stats.committed + stats.aborted);
    table.row({Table::num(skew, 1), Table::num(static_cast<int64_t>(stats.committed)),
               Table::num(static_cast<int64_t>(stats.aborted)), Table::num(rate),
               Table::num(static_cast<int64_t>(stats.atomicity_violations))});
    if (prev_aborts >= 0 && stats.aborted + 5 < prev_aborts) aborts_rise = false;
    prev_aborts = stats.aborted;
    atomic = atomic && stats.atomicity_violations == 0;
  }
  ctx.table("contention_sweep", table);

  ctx.claim({"intro", "contention flips outcomes to abort, never breaks atomicity",
             atomic ? "0 atomicity violations at every skew" : "VIOLATION",
             atomic && aborts_rise});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E12", "bench_db_contention",
       "abort behaviour under lock contention (abort validity in production "
       "clothing)",
       {"intro"}},
      body);
}
