// E16 — simulator hot-path throughput and steady-state allocation count.
//
// The zero-allocation hot-path rebuild (flat in-flight slot table, reusable
// step scratch, pooled payloads — see docs/perf.md) has to justify itself
// with numbers, and SimConfig::legacy_hot_path keeps the pre-optimization
// event loop alive in this same binary so the comparison is apples-to-apples:
// identical schedules, identical decisions, identical message ids (the
// determinism-equivalence suite proves that), different machinery underneath.
//
// Three measurements:
//  1. Hot-path throughput: a broadcast-churn fleet (every step broadcasts,
//     nobody ever decides) in the trace-off simulator configuration
//     (record_trace off, pooled payloads), across n ∈ {3, 7, 15}, under two
//     schedules. "arrival" delivers every pending message on the receiver's
//     next step — every event is pure simulator machinery (send, slot-table
//     insert, O(1) delivery, compaction), which is exactly the code this PR
//     rebuilt, so the ≥2x claim gates on its aggregate. "random" is the
//     swarm's randomized-delay adversary; its due-clock bookkeeping runs
//     identically on both paths, so by Amdahl's law it compresses the
//     observable ratio (to ~2x here) — reported, not gated.
//  2. Swarm-cell throughput: the commit fleet under the random adversary
//     across the same n and trace-on/trace-off. Reported, not gated at 2x:
//     real cells average ~70 events before deciding, and protocol
//     transitions plus adversary scheduling — identical on both paths —
//     bound the end-to-end speedup (Amdahl) to the 1.3-1.5x range.
//  3. Allocations/event: this TU replaces global operator new/delete with
//     counting wrappers (bench-only instrumentation; the library is never
//     built this way). A churn workload that sends and delivers forever is
//     run twice at two event budgets with the same seed; the allocation
//     delta divided by the event delta is the steady-state allocation rate,
//     with every warmup cost (vector growth, slot-table growth, pool chunks)
//     cancelled out. The claim is that the current path's rate is exactly 0.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "adversary/basic.h"
#include "bench/harness.h"
#include "common/stats.h"
#include "protocol/commit.h"
#include "sim/simulator.h"

// ---------------------------------------------------------------------------
// Counting allocator (this binary only).
// ---------------------------------------------------------------------------

// The replacement operators below pair malloc with free by design; GCC's
// inlining-based new/delete matcher cannot see that pairing and misfires at
// call sites inlined into this TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
uint64_t g_heap_allocs = 0;  // single-threaded bench; no atomics needed
}  // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_heap_allocs;
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using namespace rcommit;

// ---------------------------------------------------------------------------
// Churn workload: maximum message traffic, no termination — every event is a
// steady-state event once the buffers are warm.
// ---------------------------------------------------------------------------

struct ChurnMsg final : sim::MessageBase {
  explicit ChurnMsg(uint64_t stamp) : stamp(stamp) {}
  uint64_t stamp;
  [[nodiscard]] std::string debug_string() const override { return "churn"; }
};

/// Sends one message to the next processor on every step, forever.
class ChurnProcess final : public sim::Process {
 public:
  void on_step(sim::StepContext& ctx,
               std::span<const sim::Envelope> delivered) override {
    (void)delivered;
    ctx.send((ctx.self() + 1) % ctx.n(),
             sim::make_message<ChurnMsg>(static_cast<uint64_t>(ctx.clock())));
  }
  [[nodiscard]] bool decided() const override { return false; }
  [[nodiscard]] Decision decision() const override { return Decision::kAbort; }
};

/// Broadcasts on every step, forever — the messaging-bound workload the
/// ISSUE's "broadcast-heavy protocols stop hammering the allocator" is about.
class BroadcastChurnProcess final : public sim::Process {
 public:
  void on_step(sim::StepContext& ctx,
               std::span<const sim::Envelope> delivered) override {
    (void)delivered;
    ctx.broadcast(sim::make_message<ChurnMsg>(static_cast<uint64_t>(ctx.clock())));
  }
  [[nodiscard]] bool decided() const override { return false; }
  [[nodiscard]] Decision decision() const override { return Decision::kAbort; }
};

/// Round-robin scheduler that drains the stepping processor's whole buffer,
/// keeping the in-flight population bounded (≤ n messages).
class DeliverAllAdversary final : public sim::Adversary {
 public:
  void next(const sim::PatternView& view, sim::Action& action) override {
    action.proc = next_;
    next_ = (next_ + 1) % view.n();
    for (const auto& pending : view.pending(action.proc)) {
      action.deliver.push_back(pending.id);
    }
  }

 private:
  ProcId next_ = 0;
};

/// Heap allocations performed inside one churn run of `max_events` events.
int64_t churn_allocs(int32_t n, int64_t max_events, uint64_t seed, bool legacy,
                     int64_t* events_out) {
  std::vector<std::unique_ptr<sim::Process>> fleet;
  fleet.reserve(static_cast<size_t>(n));
  for (int32_t p = 0; p < n; ++p) fleet.push_back(std::make_unique<ChurnProcess>());
  sim::Simulator sim({.seed = seed,
                      .max_events = max_events,
                      .record_trace = false,
                      .pool_payloads = !legacy,
                      .legacy_hot_path = legacy},
                     std::move(fleet), std::make_unique<DeliverAllAdversary>());
  const uint64_t before = g_heap_allocs;
  const auto result = sim.run();
  const auto delta = static_cast<int64_t>(g_heap_allocs - before);
  *events_out = result.events;
  return delta;
}

// ---------------------------------------------------------------------------
// Throughput grid.
// ---------------------------------------------------------------------------

struct CellResult {
  int64_t events = 0;
  int64_t messages = 0;
  int64_t allocs = 0;
  double seconds = 0;

  [[nodiscard]] double events_per_sec() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0;
  }
  [[nodiscard]] double messages_per_sec() const {
    return seconds > 0 ? static_cast<double>(messages) / seconds : 0;
  }
  [[nodiscard]] double allocs_per_event() const {
    return events > 0 ? static_cast<double>(allocs) / static_cast<double>(events) : 0;
  }
};

/// One long broadcast-churn run in the trace-off simulator configuration,
/// under either the deliver-on-arrival schedule or the swarm's random
/// adversary. The seed depends only on n, so the legacy and current paths
/// execute byte-identical schedules.
CellResult run_hotpath_cell(const bench::Context& ctx, int32_t n, bool legacy,
                            bool deliver_on_arrival, int64_t max_events) {
  const auto seed = ctx.derive_seed(static_cast<uint64_t>(n) * 100 + 17);
  const auto make_fleet = [n] {
    std::vector<std::unique_ptr<sim::Process>> fleet;
    fleet.reserve(static_cast<size_t>(n));
    for (int32_t p = 0; p < n; ++p) {
      fleet.push_back(std::make_unique<BroadcastChurnProcess>());
    }
    return fleet;
  };
  const auto make_adversary = [&]() -> std::unique_ptr<sim::Adversary> {
    if (deliver_on_arrival) return std::make_unique<DeliverAllAdversary>();
    return adversary::make_random_adversary(seed, 3);
  };
  const auto config = [&](int64_t events) {
    return sim::SimConfig{.seed = seed,
                          .max_events = events,
                          .record_trace = false,
                          .pool_payloads = !legacy,
                          .legacy_hot_path = legacy};
  };
  // Untimed warmup: pages, caches, branch predictors, CPU clocks. Without it
  // the first cell of the grid pays every cold-start cost and the comparison
  // is between a cold path and a warm one.
  {
    sim::Simulator warm(config(max_events / 10), make_fleet(), make_adversary());
    (void)warm.run();
  }
  CellResult cell;
  const uint64_t allocs_before = g_heap_allocs;
  // Wall time is the measurement here, never a simulation input.
  const auto start = std::chrono::steady_clock::now();
  sim::Simulator sim(config(max_events), make_fleet(), make_adversary());
  const auto result = sim.run();
  const auto end = std::chrono::steady_clock::now();
  cell.seconds = std::chrono::duration<double>(end - start).count();
  cell.events = result.events;
  cell.messages = result.messages_sent;
  cell.allocs = static_cast<int64_t>(g_heap_allocs - allocs_before);
  return cell;
}

/// Runs the commit fleet under the random adversary `runs` times. Seeds
/// depend only on (n, run index), so the legacy and current paths — and the
/// trace-on and trace-off variants — execute byte-identical schedules.
CellResult run_cell(const bench::Context& ctx, int32_t n, bool record_trace,
                    bool legacy, int runs) {
  const SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  CellResult cell;
  const uint64_t allocs_before = g_heap_allocs;
  // Wall time is the measurement here, never a simulation input.
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < runs; ++r) {
    const auto seed =
        ctx.derive_seed(static_cast<uint64_t>(n) * 1000 + static_cast<uint64_t>(r) + 1);
    std::vector<int> votes(static_cast<size_t>(n), 1);
    sim::Simulator sim({.seed = seed,
                        .record_trace = record_trace,
                        .pool_payloads = !legacy,
                        .legacy_hot_path = legacy},
                       protocol::make_commit_fleet(params, votes),
                       adversary::make_random_adversary(seed, 3));
    const auto result = sim.run();
    cell.events += result.events;
    cell.messages += result.messages_sent;
  }
  const auto end = std::chrono::steady_clock::now();
  cell.seconds = std::chrono::duration<double>(end - start).count();
  cell.allocs = static_cast<int64_t>(g_heap_allocs - allocs_before);
  return cell;
}

void body(bench::Context& ctx) {
  using rcommit::Table;
  const int runs = ctx.runs(100, /*quick_floor=*/20);
  const std::vector<int32_t> ns = {3, 7, 15};

  // --- hot-path throughput: broadcast churn, trace-off, claimed >=2x -------
  const int64_t hotpath_events = ctx.quick() ? 60'000 : 300'000;
  ctx.out() << "E16: simulator hot-path throughput, broadcast churn, "
               "trace-off, "
            << hotpath_events << " events per cell\n\n";

  Table hotpath({"n", "schedule", "path", "events/s", "messages/s",
                 "allocs/event"});
  CellResult arrival_current_total;
  CellResult arrival_legacy_total;
  CellResult random_current_total;
  CellResult random_legacy_total;
  for (const int32_t n : ns) {
    for (const bool arrival : {true, false}) {
      for (const bool legacy : {false, true}) {
        const auto cell = run_hotpath_cell(ctx, n, legacy, arrival, hotpath_events);
        hotpath.row({Table::num(static_cast<int64_t>(n)),
                     arrival ? "arrival" : "random",
                     legacy ? "legacy" : "current",
                     Table::num(cell.events_per_sec(), 0),
                     Table::num(cell.messages_per_sec(), 0),
                     Table::num(cell.allocs_per_event(), 3)});
        auto& total = arrival ? (legacy ? arrival_legacy_total : arrival_current_total)
                              : (legacy ? random_legacy_total : random_current_total);
        total.events += cell.events;
        total.messages += cell.messages;
        total.allocs += cell.allocs;
        total.seconds += cell.seconds;
        ctx.timing({std::string("hotpath_") + (arrival ? "arrival_" : "random_") +
                        (legacy ? "legacy" : "current") + "_n" + std::to_string(n),
                    cell.seconds, 1, 0});
      }
    }
  }
  ctx.table("simperf_hotpath", hotpath);

  const auto aggregate_speedup = [](const CellResult& current,
                                    const CellResult& legacy) {
    return legacy.events_per_sec() > 0
               ? current.events_per_sec() / legacy.events_per_sec()
               : 0;
  };
  const double hot_speedup =
      aggregate_speedup(arrival_current_total, arrival_legacy_total);
  const double random_speedup =
      aggregate_speedup(random_current_total, random_legacy_total);
  ctx.scalar("events_per_sec_hotpath_current",
             arrival_current_total.events_per_sec(), "1/s");
  ctx.scalar("events_per_sec_hotpath_legacy",
             arrival_legacy_total.events_per_sec(), "1/s");
  ctx.scalar("messages_per_sec_hotpath_current",
             arrival_current_total.messages_per_sec(), "1/s");
  ctx.scalar("speedup_hotpath", hot_speedup, "x");
  // Shared adversary bookkeeping (due-clock memo, pending scans, RNG) dilutes
  // the ratio under the random schedule — reported for context, not gated.
  ctx.scalar("speedup_hotpath_random", random_speedup, "x");

  char hot_text[32];
  std::snprintf(hot_text, sizeof hot_text, "%.2fx", hot_speedup);
  ctx.claim({"simperf_2x",
             "the rebuilt hot path runs >=2x the legacy events/sec on the "
             "trace-off configuration (broadcast churn, deliver-on-arrival)",
             std::string(hot_text) + " aggregate over n in {3,7,15}",
             hot_speedup >= 2.0});

  // --- swarm-cell throughput: commit fleet, reported (Amdahl-bound) --------
  ctx.out() << "\nSwarm-cell throughput: commit fleet under the random "
               "adversary, "
            << runs << " runs per cell\n\n";

  Table grid({"n", "trace", "path", "events/s", "messages/s", "allocs/event"});
  CellResult new_off_total;   // trace-off aggregate, current path
  CellResult legacy_off_total;  // trace-off aggregate, legacy path
  for (const int32_t n : ns) {
    for (const bool record_trace : {false, true}) {
      for (const bool legacy : {false, true}) {
        const auto cell = run_cell(ctx, n, record_trace, legacy, runs);
        grid.row({Table::num(static_cast<int64_t>(n)),
                  record_trace ? "on" : "off", legacy ? "legacy" : "current",
                  Table::num(cell.events_per_sec(), 0),
                  Table::num(cell.messages_per_sec(), 0),
                  Table::num(cell.allocs_per_event(), 3)});
        if (!record_trace) {
          auto& total = legacy ? legacy_off_total : new_off_total;
          total.events += cell.events;
          total.messages += cell.messages;
          total.allocs += cell.allocs;
          total.seconds += cell.seconds;
          ctx.timing({std::string("traceoff_") +
                          (legacy ? "legacy" : "current") + "_n" +
                          std::to_string(n),
                      cell.seconds, runs, 0});
        }
      }
    }
  }
  ctx.table("simperf_grid", grid);

  const double speedup =
      legacy_off_total.seconds > 0 && new_off_total.events_per_sec() > 0
          ? new_off_total.events_per_sec() / legacy_off_total.events_per_sec()
          : 0;
  ctx.scalar("events_per_sec_traceoff_current", new_off_total.events_per_sec(), "1/s");
  ctx.scalar("events_per_sec_traceoff_legacy", legacy_off_total.events_per_sec(), "1/s");
  ctx.scalar("messages_per_sec_traceoff_current", new_off_total.messages_per_sec(), "1/s");
  ctx.scalar("allocs_per_event_traceoff_current", new_off_total.allocs_per_event());
  ctx.scalar("allocs_per_event_traceoff_legacy", legacy_off_total.allocs_per_event());
  // End-to-end swarm-cell speedup. Reported, not gated: a commit cell averages
  // ~70 events before deciding, and the protocol transitions and adversary
  // scheduling inside each event are identical on both paths, so Amdahl caps
  // this ratio well below the hot-path speedup above.
  ctx.scalar("speedup_swarm_cells_traceoff", speedup, "x");

  // --- steady-state allocations: churn delta between two event budgets ----
  const int64_t short_events = ctx.quick() ? 2'000 : 4'000;
  const int64_t long_events = ctx.quick() ? 10'000 : 40'000;
  const auto churn_seed = ctx.derive_seed(16);

  int64_t ev_short = 0;
  int64_t ev_long = 0;
  const int64_t a_short = churn_allocs(7, short_events, churn_seed, false, &ev_short);
  const int64_t a_long = churn_allocs(7, long_events, churn_seed, false, &ev_long);
  const int64_t extra_allocs = a_long - a_short;
  const int64_t extra_events = ev_long - ev_short;

  int64_t lev_short = 0;
  int64_t lev_long = 0;
  const int64_t la_short = churn_allocs(7, short_events, churn_seed, true, &lev_short);
  const int64_t la_long = churn_allocs(7, long_events, churn_seed, true, &lev_long);
  const double legacy_rate =
      lev_long > lev_short
          ? static_cast<double>(la_long - la_short) /
                static_cast<double>(lev_long - lev_short)
          : 0;

  Table churn({"path", "steady-state events", "heap allocations", "allocs/event"});
  churn.row({"current", Table::num(extra_events), Table::num(extra_allocs),
             Table::num(extra_events > 0 ? static_cast<double>(extra_allocs) /
                                               static_cast<double>(extra_events)
                                         : 0,
                        4)});
  churn.row({"legacy", Table::num(lev_long - lev_short),
             Table::num(la_long - la_short), Table::num(legacy_rate, 4)});
  ctx.table("simperf_steady_state", churn);
  ctx.scalar("steady_allocs_per_event",
             extra_events > 0 ? static_cast<double>(extra_allocs) /
                                    static_cast<double>(extra_events)
                              : -1);
  ctx.scalar("steady_allocs_per_event_legacy", legacy_rate);

  ctx.claim({"simperf_zero_alloc",
             "the non-crash hot path performs zero heap allocations per "
             "event in steady state (pooled payloads, warm buffers)",
             std::to_string(extra_allocs) + " allocations over " +
                 std::to_string(extra_events) + " steady-state events",
             extra_allocs == 0 && extra_events > 0});
}

}  // namespace

int main(int argc, char** argv) {
  return rcommit::bench::run(
      argc, argv,
      {"E16", "bench_simperf",
       "simulator hot-path throughput: events/sec, messages/sec, "
       "allocations/event, legacy vs current",
       {"simperf_2x", "simperf_zero_alloc"}},
      body);
}
