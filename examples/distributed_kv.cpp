// Distributed key-value store example.
//
// The paper's motivating application (§1): a transaction processed
// concurrently at several processors must be installed at all of them or at
// none. This example runs a 4-shard KV database whose cross-shard
// transactions are decided by the paper's randomized commit protocol running
// over a threaded in-memory network with injected delays — then verifies
// atomicity by reading every shard back.
//
//   $ distributed_kv [txn_count] [seed]
#include <filesystem>
#include <iostream>
#include <map>
#include <string>

#include "db/txn.h"

int main(int argc, char** argv) {
  using namespace rcommit;
  namespace fs = std::filesystem;

  const int txn_count = argc > 1 ? std::stoi(argv[1]) : 10;
  const uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 7;

  const fs::path dir =
      fs::temp_directory_path() / ("rcommit_example_kv_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  db::DistributedDb::Options options;
  options.shard_count = 4;
  options.data_dir = dir;
  options.backend = db::CommitBackend::kPaperProtocol;
  options.seed = seed;
  options.network = {.min_delay = std::chrono::microseconds(50),
                     .max_delay = std::chrono::microseconds(600)};
  db::DistributedDb database(options);

  std::cout << "4-shard KV store; cross-shard transactions decided by the "
               "randomized commit protocol\n\n";

  int committed = 0;
  int aborted = 0;
  for (int i = 0; i < txn_count; ++i) {
    // Each transaction writes a user record to one shard and an index entry
    // to another (round-robin placement).
    const int user_shard = i % 4;
    const int index_shard = (i + 1) % 4;
    const std::string user_key = "user:" + std::to_string(i);
    const auto outcome = database.execute({
        {user_shard, {{user_key, "name-" + std::to_string(i)}}},
        {index_shard, {{"idx:" + std::to_string(i), user_key}}},
    });
    std::cout << "txn " << i << " [shards " << user_shard << "," << index_shard
              << "]: " << to_string(outcome.decision)
              << (outcome.decided ? "" : " (in doubt)") << "\n";
    (outcome.decision == Decision::kCommit ? committed : aborted) += 1;

    // Atomicity check: either both writes landed or neither did.
    const bool user_there = database.get(user_shard, user_key).has_value();
    const bool index_there =
        database.get(index_shard, "idx:" + std::to_string(i)).has_value();
    if (user_there != index_there) {
      std::cout << "  ATOMICITY VIOLATION on txn " << i << "\n";
      return 1;
    }
  }

  std::cout << "\n" << committed << " committed, " << aborted
            << " aborted, atomicity verified on every transaction\n"
            << "WALs in " << dir.string() << "\n";

  std::error_code ec;
  fs::remove_all(dir, ec);
  return 0;
}
