// Fault injection demo: watch a synchronous commit protocol break, and the
// randomized protocol shrug.
//
// Reproduces the paper's core argument interactively on the deterministic
// simulator: the same three scenarios (clean run, one late message, crashes
// within the fault bound) are fed to 2PC, 3PC, and Protocol 2, and each
// processor's decision is printed so the inconsistency is visible processor
// by processor.
//
//   $ fault_injection_demo
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "adversary/latemsg.h"
#include "baselines/threepc.h"
#include "baselines/twopc.h"
#include "protocol/commit.h"
#include "sim/simulator.h"

namespace {

using namespace rcommit;

constexpr int kN = 5;
const SystemParams kParams{.n = kN, .t = 2, .k = 2};

enum class Proto { kTwoPc, kThreePc, kOurs };

std::vector<std::unique_ptr<sim::Process>> make_fleet(Proto proto) {
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int i = 0; i < kN; ++i) {
    switch (proto) {
      case Proto::kTwoPc: {
        baselines::TwoPcProcess::Options options;
        options.params = kParams;
        options.initial_vote = 1;
        options.policy = baselines::TwoPcTimeoutPolicy::kPresumeAbort;
        fleet.push_back(std::make_unique<baselines::TwoPcProcess>(options));
        break;
      }
      case Proto::kThreePc: {
        baselines::ThreePcProcess::Options options;
        options.params = kParams;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<baselines::ThreePcProcess>(options));
        break;
      }
      case Proto::kOurs: {
        protocol::CommitProcess::Options options;
        options.params = kParams;
        options.initial_vote = 1;
        fleet.push_back(std::make_unique<protocol::CommitProcess>(options));
        break;
      }
    }
  }
  return fleet;
}

std::unique_ptr<sim::Adversary> make_scenario(int scenario) {
  switch (scenario) {
    case 0:  // clean
      return adversary::make_on_time_adversary();
    case 1: {  // one late message: coordinator's 2nd message to processor 3
      adversary::LateRule rule{.from = 0, .to = 3, .nth = 1, .extra_delay = 60};
      return std::make_unique<adversary::LateMessageAdversary>(
          std::vector<adversary::LateRule>{rule});
    }
    default: {  // two crashes (within t = 2), mid-broadcast
      std::vector<adversary::CrashPlan> plans;
      plans.push_back({.victim = 1, .at_clock = 2, .suppress_sends_to = {3, 4}});
      plans.push_back({.victim = 4, .at_clock = 4, .suppress_sends_to = {2}});
      return std::make_unique<adversary::CrashAdversary>(
          adversary::make_on_time_adversary(), std::move(plans));
    }
  }
}

const char* scenario_name(int scenario) {
  switch (scenario) {
    case 0: return "clean run (on-time, failure-free)";
    case 1: return "ONE LATE MESSAGE (coordinator -> p3 delayed 60 ticks)";
    default: return "two mid-broadcast crashes (within the fault bound)";
  }
}

const char* proto_name(Proto proto) {
  switch (proto) {
    case Proto::kTwoPc: return "2PC   ";
    case Proto::kThreePc: return "3PC   ";
    default: return "ours  ";
  }
}

}  // namespace

int main() {
  std::cout << "n = 5 processors, all initially voting COMMIT; timeouts 4K = 8 "
               "ticks\n";
  for (int scenario = 0; scenario < 3; ++scenario) {
    std::cout << "\n--- scenario: " << scenario_name(scenario) << " ---\n";
    for (auto proto : {Proto::kTwoPc, Proto::kThreePc, Proto::kOurs}) {
      sim::Simulator sim({.seed = 1, .max_events = 30'000}, make_fleet(proto),
                         make_scenario(scenario));
      const auto result = sim.run();
      std::cout << proto_name(proto) << " decisions: ";
      for (int p = 0; p < kN; ++p) {
        if (result.crashed[static_cast<size_t>(p)]) {
          std::cout << "[crashed] ";
        } else if (const auto& d = result.decisions[static_cast<size_t>(p)]) {
          std::cout << (*d == Decision::kCommit ? "COMMIT " : "ABORT  ");
        } else {
          std::cout << "-blocked- ";
        }
      }
      if (result.has_conflicting_decisions()) {
        std::cout << "  <<< INCONSISTENT: database diverges!";
      }
      std::cout << "\n";
    }
  }
  std::cout << "\nThe randomized protocol (Coan & Lundelius 1986) never "
               "diverges: late messages\nand crashes can only delay it or "
               "steer it toward a unanimous abort.\n";
  return 0;
}
