// Shard cluster over real TCP sockets.
//
// The fully message-driven deployment: shard servers own WAL-backed stores
// and talk to each other and to the client exclusively through the TCP
// loopback network — prepare requests, tunnelled commit-protocol rounds, and
// reads all cross real sockets. Demonstrates that the exact protocol state
// machines proven in the simulator drive a working distributed database.
//
//   $ shard_cluster [txns]
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>

#include "db/kv.h"
#include "db/rpc.h"
#include "transport/tcp.h"

int main(int argc, char** argv) {
  using namespace rcommit;
  using namespace std::chrono_literals;
  namespace fs = std::filesystem;

  const int txns = argc > 1 ? std::stoi(argv[1]) : 8;
  constexpr int kShards = 3;
  const ProcId kClient = kShards;

  const fs::path dir = fs::temp_directory_path() /
                       ("rcommit_cluster_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  transport::TcpNetwork net(kShards + 1);

  std::vector<std::unique_ptr<db::KvStore>> stores;
  std::vector<std::unique_ptr<db::ShardServer>> servers;
  for (int i = 0; i < kShards; ++i) {
    stores.push_back(std::make_unique<db::KvStore>(
        dir / ("shard-" + std::to_string(i) + ".wal")));
    servers.push_back(std::make_unique<db::ShardServer>(
        db::ShardServer::Options{.node_id = i, .seed = 1000 + static_cast<uint64_t>(i)},
        *stores.back(), net));
  }
  net.start();
  for (auto& server : servers) server->start();

  std::cout << "3 shard servers listening on 127.0.0.1 ports";
  for (int i = 0; i < kShards; ++i) std::cout << ' ' << net.port(i);
  std::cout << "\n\n";

  db::DbTxnClient client(kClient, net);
  int committed = 0;
  for (int i = 0; i < txns; ++i) {
    const int a = i % kShards;
    const int b = (i + 1) % kShards;
    const std::string key = "order:" + std::to_string(i);
    const auto outcome = client.execute(
        i + 1,
        {{a, {{key, "placed"}}}, {b, {{"mirror:" + key, "placed"}}}},
        5000ms);
    std::cout << "txn " << i + 1 << " [shards " << a << "," << b << "] -> "
              << (outcome ? to_string(*outcome) : "IN DOUBT") << "\n";
    if (outcome == Decision::kCommit) ++committed;
  }

  // Verify over the wire.
  int verified = 0;
  for (int i = 0; i < txns; ++i) {
    const int a = i % kShards;
    if (client.get(a, "order:" + std::to_string(i), 2000ms) == "placed") ++verified;
  }
  std::cout << "\n" << committed << "/" << txns << " committed, " << verified
            << " verified by TCP reads\n";

  for (auto& server : servers) server->stop();
  net.stop();
  std::error_code ec;
  fs::remove_all(dir, ec);
  return committed == verified ? 0 : 1;
}
