// Scenario runner: compose a protocol, an adversary, and fault injection from
// the command line, run it on the deterministic simulator, and inspect the
// result — optionally as a full step-by-step trace.
//
//   $ scenario_cli --protocol=commit --n=5 --k=2 --adversary=random
//                  --max-delay=4 --crashes=2 --seed=7 --votes=11011 --trace
//
// Flags:
//   --protocol   commit | agreement | twopc | threepc        (default commit)
//   --n          processors                                   (default 5)
//   --t          fault bound                                  (default (n-1)/2)
//   --k          on-time bound K in ticks                     (default 2)
//   --adversary  ontime | random | mostly | stretch | staller (default ontime)
//   --max-delay  random adversary's max delay                 (default 4)
//   --stretch    stretch adversary's uniform delay            (default 8)
//   --crashes    number of random crash victims               (default 0)
//   --votes      bit string of initial votes, MSB = proc 0    (default all 1)
//   --seed       master seed                                  (default 1)
//   --trace      dump the full event narrative
//   --rounds     print the asynchronous-round analysis
#include <iostream>
#include <memory>
#include <string>

#include "adversary/adaptive.h"
#include "adversary/basic.h"
#include "adversary/crash.h"
#include "adversary/stretch.h"
#include "baselines/threepc.h"
#include "baselines/twopc.h"
#include "common/flags.h"
#include "common/rng.h"
#include "metrics/counters.h"
#include "protocol/agreement.h"
#include "protocol/commit.h"
#include "sim/rounds.h"
#include "sim/simulator.h"
#include "sim/tracedump.h"

namespace {

using namespace rcommit;

std::vector<int> parse_votes(const std::string& bits, int n) {
  std::vector<int> votes(static_cast<size_t>(n), 1);
  for (size_t i = 0; i < bits.size() && i < votes.size(); ++i) {
    votes[i] = bits[i] == '0' ? 0 : 1;
  }
  return votes;
}

std::vector<std::unique_ptr<sim::Process>> make_fleet(const std::string& protocol,
                                                      const SystemParams& params,
                                                      const std::vector<int>& votes,
                                                      uint64_t seed) {
  std::vector<std::unique_ptr<sim::Process>> fleet;
  if (protocol == "commit") {
    return protocol::make_commit_fleet(params, votes);
  }
  for (int i = 0; i < params.n; ++i) {
    if (protocol == "agreement") {
      protocol::AgreementProcess::Options options;
      options.params = params;
      options.initial_value = votes[static_cast<size_t>(i)];
      RandomTape coin_rng(seed ^ 0xc01);
      options.coins = coin_rng.flip_bits(params.n);
      fleet.push_back(std::make_unique<protocol::AgreementProcess>(std::move(options)));
    } else if (protocol == "twopc") {
      baselines::TwoPcProcess::Options options;
      options.params = params;
      options.initial_vote = votes[static_cast<size_t>(i)];
      options.policy = baselines::TwoPcTimeoutPolicy::kPresumeAbort;
      fleet.push_back(std::make_unique<baselines::TwoPcProcess>(options));
    } else if (protocol == "threepc") {
      baselines::ThreePcProcess::Options options;
      options.params = params;
      options.initial_vote = votes[static_cast<size_t>(i)];
      fleet.push_back(std::make_unique<baselines::ThreePcProcess>(options));
    } else {
      RCOMMIT_CHECK_MSG(false, "unknown --protocol: " << protocol);
    }
  }
  return fleet;
}

std::unique_ptr<sim::Adversary> make_adversary(const Flags& flags,
                                               const SystemParams& params,
                                               uint64_t seed) {
  const auto kind = flags.get_string("adversary", "ontime");
  std::unique_ptr<sim::Adversary> base;
  if (kind == "ontime") {
    base = adversary::make_on_time_adversary();
  } else if (kind == "random") {
    base = adversary::make_random_adversary(seed + 1,
                                            flags.get_int("max-delay", 4));
  } else if (kind == "mostly") {
    base = adversary::make_mostly_on_time_adversary(seed + 1, params.k, 0.1,
                                                    4 * params.k);
  } else if (kind == "stretch") {
    base = std::make_unique<adversary::DelayStretchAdversary>(
        flags.get_int("stretch", 8));
  } else if (kind == "staller") {
    base = std::make_unique<adversary::QuorumStallAdversary>(params.t, 64, seed + 1);
  } else {
    RCOMMIT_CHECK_MSG(false, "unknown --adversary: " << kind);
  }

  const auto crashes = static_cast<int>(flags.get_int("crashes", 0));
  if (crashes > 0) {
    auto plans = adversary::random_crash_plans(seed + 2, params.n, crashes,
                                               /*max_clock=*/10 * params.k);
    base = std::make_unique<adversary::CrashAdversary>(std::move(base),
                                                       std::move(plans));
  }
  return base;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = Flags::parse(argc, argv);

  const auto n = static_cast<int32_t>(flags.get_int("n", 5));
  SystemParams params;
  params.n = n;
  params.t = static_cast<int32_t>(flags.get_int("t", (n - 1) / 2));
  params.k = flags.get_int("k", 2);
  const auto seed = static_cast<uint64_t>(flags.get_int("seed", 1));
  const auto protocol = flags.get_string("protocol", "commit");
  const auto votes = parse_votes(flags.get_string("votes", ""), n);
  const bool want_trace = flags.get_bool("trace", false);
  const bool want_rounds = flags.get_bool("rounds", false);

  sim::Simulator sim({.seed = seed, .max_events = flags.get_int("max-events", 200'000)},
                     make_fleet(protocol, params, votes, seed),
                     make_adversary(flags, params, seed));

  for (const auto& unknown : flags.unused()) {
    std::cerr << "warning: unknown flag --" << unknown << "\n";
  }

  const auto result = sim.run();

  std::cout << protocol << " n=" << params.n << " t=" << params.t
            << " K=" << params.k << " seed=" << seed << "\n";
  std::cout << "status: "
            << (result.status == sim::RunStatus::kAllDecided ? "all decided"
                                                             : "did not terminate")
            << " after " << result.events << " events, " << result.messages_sent
            << " messages\n";
  for (ProcId p = 0; p < params.n; ++p) {
    std::cout << "  p" << p << " vote=" << votes[static_cast<size_t>(p)] << " -> ";
    if (result.crashed[static_cast<size_t>(p)]) {
      std::cout << "crashed";
    } else if (const auto& d = result.decisions[static_cast<size_t>(p)]) {
      std::cout << to_string(*d);
    } else {
      std::cout << "undecided";
    }
    std::cout << "\n";
  }
  if (result.has_conflicting_decisions()) {
    std::cout << "!! CONFLICTING DECISIONS (expected only for baselines under "
                 "timing violations)\n";
  }

  if (want_rounds && result.status == sim::RunStatus::kAllDecided) {
    const auto m = metrics::measure_run(result, params.k);
    std::cout << "asynchronous rounds to decision: " << m.max_decision_round
              << ", max decide clock: " << m.max_decision_clock
              << ", late messages: " << m.late_messages << "\n";
  }
  if (want_trace) {
    sim::dump_trace(std::cout, result.trace, {.show_messages = true, .k = params.k});
  }
  return 0;
}
