// Quickstart: run one instance of the randomized transaction commit protocol
// (Coan & Lundelius, PODC 1986) on the deterministic simulator.
//
//   $ quickstart [n] [seed]
//
// Builds a fleet of n processors that all want to commit, drives them with
// the paper's "realistic" network (mostly on-time, occasionally late), and
// prints the outcome plus the run's key measurements.
#include <cstdint>
#include <iostream>
#include <string>

#include "adversary/basic.h"
#include "common/types.h"
#include "metrics/counters.h"
#include "protocol/commit.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace rcommit;

  const int32_t n = argc > 1 ? std::stoi(argv[1]) : 5;
  const uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 2026;
  const SystemParams params{.n = n, .t = (n - 1) / 2, .k = 3};

  std::cout << "Transaction commit, realistic fault model\n"
            << "  n = " << params.n << " processors, tolerating t = " << params.t
            << " crash faults, K = " << params.k << " ticks\n";

  // Every processor initially wants to commit.
  std::vector<int> votes(static_cast<size_t>(n), 1);
  auto fleet = protocol::make_commit_fleet(params, votes);

  // The paper's motivating network: messages usually arrive within K ticks,
  // but sometimes come late.
  auto network = adversary::make_mostly_on_time_adversary(seed, params.k,
                                                          /*p_late=*/0.05,
                                                          /*max_late=*/4 * params.k);

  sim::Simulator sim({.seed = seed}, std::move(fleet), std::move(network));
  const auto result = sim.run();

  const auto outcome = result.agreed_decision();
  std::cout << "\noutcome: " << (outcome ? to_string(*outcome) : "(undecided)")
            << "\n";

  const auto m = metrics::measure_run(result, params.k);
  std::cout << "events:               " << m.events << "\n"
            << "messages sent:        " << m.messages_sent << "\n"
            << "late messages:        " << m.late_messages << "\n"
            << "asynchronous rounds:  " << m.max_decision_round
            << "   (paper: 14 expected, Theorem 10)\n"
            << "max decide clock:     " << m.max_decision_clock
            << " ticks (paper: 8K = " << 8 * params.k
            << " when failure-free and on-time)\n";
  return 0;
}
