// Bank transfer example: money conservation across shard boundaries.
//
// Two shards hold account balances; transfers debit one shard and credit the
// other inside a distributed transaction. A third "auditor" pass sums every
// balance after a burst of transfers (with a deliberately conflicting
// workload so some transactions abort) and checks conservation — which holds
// exactly because the commit protocol never installs a debit without its
// matching credit.
//
//   $ bank_transfer [transfers] [seed]
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "db/txn.h"

namespace {

int64_t balance(rcommit::db::DistributedDb& database, int shard,
                const std::string& account) {
  const auto value = database.get(shard, account);
  return value ? std::stoll(*value) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcommit;
  namespace fs = std::filesystem;

  const int transfers = argc > 1 ? std::stoi(argv[1]) : 20;
  const uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 99;

  const fs::path dir =
      fs::temp_directory_path() / ("rcommit_example_bank_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  db::DistributedDb::Options options;
  options.shard_count = 2;
  options.data_dir = dir;
  options.seed = seed;
  options.network = {.min_delay = std::chrono::microseconds(50),
                     .max_delay = std::chrono::microseconds(400)};
  db::DistributedDb database(options);

  // Four accounts, two per shard, 1000 units each => total 4000.
  const std::vector<std::pair<int, std::string>> accounts = {
      {0, "alice"}, {0, "bob"}, {1, "carol"}, {1, "dave"}};
  std::vector<int64_t> balances(accounts.size(), 1000);
  for (size_t i = 0; i < accounts.size(); ++i) {
    const auto outcome = database.execute(
        {{accounts[i].first, {{accounts[i].second, std::to_string(balances[i])}}}});
    if (outcome.decision != Decision::kCommit) {
      std::cout << "setup failed\n";
      return 1;
    }
  }
  const int64_t expected_total = 4000;

  std::cout << "4 accounts across 2 shards, 1000 each (total " << expected_total
            << ")\nrunning " << transfers << " random cross-shard transfers...\n\n";

  RandomTape rng(seed);
  int committed = 0;
  for (int i = 0; i < transfers; ++i) {
    const auto from = static_cast<size_t>(rng.next_below(accounts.size()));
    auto to = static_cast<size_t>(rng.next_below(accounts.size()));
    if (to == from) to = (to + 1) % accounts.size();
    const auto amount = static_cast<int64_t>(1 + rng.next_below(100));
    if (balances[from] < amount) continue;

    const int64_t new_from = balances[from] - amount;
    const int64_t new_to = balances[to] + amount;
    // Group writes per shard: when both accounts live on the same shard the
    // two writes belong to one entry. (A brace-initialized map with a
    // duplicate key would silently drop the second write — don't.)
    std::map<int32_t, std::vector<db::KvWrite>> writes;
    writes[accounts[from].first].push_back(
        {accounts[from].second, std::to_string(new_from)});
    writes[accounts[to].first].push_back(
        {accounts[to].second, std::to_string(new_to)});
    const auto outcome = database.execute(writes);
    if (outcome.decision == Decision::kCommit) {
      balances[from] = new_from;
      balances[to] = new_to;
      ++committed;
      std::cout << "transfer " << i << ": " << accounts[from].second << " -> "
                << accounts[to].second << " " << amount << "  COMMIT\n";
    } else {
      std::cout << "transfer " << i << ": " << accounts[from].second << " -> "
                << accounts[to].second << " " << amount << "  ABORT\n";
    }
  }

  int64_t total = 0;
  std::cout << "\nfinal balances:\n";
  for (size_t i = 0; i < accounts.size(); ++i) {
    const int64_t b = balance(database, accounts[i].first, accounts[i].second);
    std::cout << "  " << accounts[i].second << " = " << b << "\n";
    total += b;
  }
  std::cout << "total = " << total << " (expected " << expected_total << ")  "
            << (total == expected_total ? "CONSERVED" : "VIOLATED") << "\n"
            << committed << "/" << transfers << " transfers committed\n";

  std::error_code ec;
  fs::remove_all(dir, ec);
  return total == expected_total ? 0 : 1;
}
