// Tests for the supporting tools: the flag parser and the workload generator.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "common/check.h"
#include "common/flags.h"
#include "db/workload.h"

namespace rcommit {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

// --- flags ------------------------------------------------------------------------

TEST(Flags, EqualsAndSpaceForms) {
  const auto flags = parse({"--alpha=1", "--beta", "two", "--gamma"});
  EXPECT_EQ(flags.get_int("alpha", 0), 1);
  EXPECT_EQ(flags.get_string("beta", ""), "two");
  EXPECT_TRUE(flags.get_bool("gamma", false));
}

TEST(Flags, DefaultsWhenAbsent) {
  const auto flags = parse({});
  EXPECT_EQ(flags.get_int("missing", 42), 42);
  EXPECT_EQ(flags.get_string("missing", "d"), "d");
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.get_bool("missing", false));
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Flags, TypedParsing) {
  const auto flags = parse({"--count=-7", "--rate=0.25", "--on=yes", "--off=0"});
  EXPECT_EQ(flags.get_int("count", 0), -7);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0), 0.25);
  EXPECT_TRUE(flags.get_bool("on", false));
  EXPECT_FALSE(flags.get_bool("off", true));
}

TEST(Flags, MalformedValuesThrow) {
  const auto flags = parse({"--count=abc", "--flag=maybe"});
  EXPECT_THROW((void)flags.get_int("count", 0), CheckFailure);
  EXPECT_THROW((void)flags.get_bool("flag", false), CheckFailure);
}

TEST(Flags, PositionalArgumentsRejected) {
  std::vector<const char*> argv = {"prog", "positional"};
  EXPECT_THROW(Flags::parse(2, argv.data()), CheckFailure);
}

TEST(Flags, UnusedReportsUnqueried) {
  const auto flags = parse({"--used=1", "--typo=2"});
  (void)flags.get_int("used", 0);
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Flags, BooleanFollowedByFlagIsBare) {
  const auto flags = parse({"--verbose", "--n", "5"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("n", 0), 5);
}

TEST(Flags, PrintUsageListsEveryDocumentedFlag) {
  const std::vector<FlagDoc> docs = {
      {"json", "path", "write artifact"},
      {"quick", "", "reduced grids"},
  };
  std::ostringstream os;
  Flags::print_usage(os, "bench_x", "one-line summary", docs);
  const auto text = os.str();
  EXPECT_NE(text.find("usage: bench_x"), std::string::npos);
  EXPECT_NE(text.find("one-line summary"), std::string::npos);
  EXPECT_NE(text.find("--json=<path>"), std::string::npos);
  EXPECT_NE(text.find("--quick"), std::string::npos);
  EXPECT_NE(text.find("reduced grids"), std::string::npos);
}

TEST(Flags, CheckUnknownFlagPrintsUsageAndFails) {
  const std::vector<FlagDoc> docs = {{"known", "N", "a real flag"}};
  const auto flags = parse({"--known=1", "--bogus=2"});
  (void)flags.get_int("known", 0);
  std::ostringstream os;
  EXPECT_FALSE(flags.check_unknown(os, "summary", docs));
  EXPECT_NE(os.str().find("unknown flag --bogus"), std::string::npos);
  EXPECT_NE(os.str().find("--known=<N>"), std::string::npos);
}

TEST(Flags, CheckUnknownPassesWhenAllFlagsQueried) {
  const std::vector<FlagDoc> docs = {{"known", "N", "a real flag"}};
  const auto flags = parse({"--known=1"});
  (void)flags.get_int("known", 0);
  std::ostringstream os;
  EXPECT_TRUE(flags.check_unknown(os, "summary", docs));
  EXPECT_TRUE(os.str().empty());
}

// --- workload ---------------------------------------------------------------------

TEST(Workload, RespectsFanoutAndWriteCounts) {
  db::WorkloadOptions options;
  options.shard_count = 5;
  options.fanout = 3;
  options.writes_per_shard = 2;
  db::WorkloadGenerator gen(options, 1);
  for (int i = 0; i < 50; ++i) {
    const auto txn = gen.next();
    EXPECT_EQ(txn.size(), 3u);
    for (const auto& [shard, writes] : txn) {
      EXPECT_GE(shard, 0);
      EXPECT_LT(shard, 5);
      EXPECT_EQ(writes.size(), 2u);
    }
  }
}

TEST(Workload, FanoutClampedToShardCount) {
  db::WorkloadOptions options;
  options.shard_count = 2;
  options.fanout = 10;
  db::WorkloadGenerator gen(options, 2);
  EXPECT_EQ(gen.next().size(), 2u);
}

TEST(Workload, ValuesAreUniquePerTransaction) {
  db::WorkloadGenerator gen({}, 3);
  std::set<std::string> values;
  for (int i = 0; i < 20; ++i) {
    const auto txn = gen.next();
    std::string value;
    for (const auto& [shard, writes] : txn) {
      for (const auto& write : writes) {
        if (value.empty()) value = write.value;
        EXPECT_EQ(write.value, value) << "one value per txn";
      }
    }
    EXPECT_TRUE(values.insert(value).second) << "values unique across txns";
  }
}

TEST(Workload, SkewConcentratesKeys) {
  auto hot_fraction = [](double skew) {
    db::WorkloadOptions options;
    options.shard_count = 1;
    options.fanout = 1;
    options.writes_per_shard = 1;
    options.keys_per_shard = 100;
    options.skew = skew;
    db::WorkloadGenerator gen(options, 4);
    int hot = 0;
    constexpr int kDraws = 2000;
    for (int i = 0; i < kDraws; ++i) {
      const auto txn = gen.next();
      const auto& key = txn.begin()->second.front().key;
      const int rank = std::stoi(key.substr(4));
      if (rank < 10) ++hot;  // the 10% hottest keys
    }
    return static_cast<double>(hot) / kDraws;
  };
  const double uniform = hot_fraction(0.0);
  const double skewed = hot_fraction(3.0);
  EXPECT_NEAR(uniform, 0.10, 0.04);
  EXPECT_GT(skewed, 2.5 * uniform);
}

TEST(Workload, DeterministicGivenSeed) {
  db::WorkloadGenerator a({}, 9);
  db::WorkloadGenerator b({}, 9);
  for (int i = 0; i < 10; ++i) {
    const auto ta = a.next();
    const auto tb = b.next();
    ASSERT_EQ(ta.size(), tb.size());
    auto ita = ta.begin();
    auto itb = tb.begin();
    for (; ita != ta.end(); ++ita, ++itb) {
      EXPECT_EQ(ita->first, itb->first);
      ASSERT_EQ(ita->second.size(), itb->second.size());
      for (size_t w = 0; w < ita->second.size(); ++w) {
        EXPECT_EQ(ita->second[w].key, itb->second[w].key);
      }
    }
  }
}

TEST(Workload, ValidatesOptions) {
  db::WorkloadOptions bad;
  bad.fanout = 0;
  EXPECT_THROW(db::WorkloadGenerator gen(bad, 1), CheckFailure);
}

}  // namespace
}  // namespace rcommit
