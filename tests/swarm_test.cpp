// Tests for the simulation-swarm harness: matrix enumeration, the
// work-stealing pool, invariant gating over the full protocol × adversary
// matrix, and thread-count-independent aggregation.
// RCOMMIT_LINT_ALLOW_FILE(R2): pool tests must observe the worker threads they schedule
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "common/check.h"
#include "swarm/matrix.h"
#include "swarm/pool.h"
#include "swarm/runner.h"
#include "swarm/swarm.h"

namespace rcommit::swarm {
namespace {

// --- matrix -----------------------------------------------------------------

TEST(Matrix, KindNamesRoundTrip) {
  for (const auto p : {ProtocolKind::kCommit, ProtocolKind::kBenor,
                       ProtocolKind::kTwoPc, ProtocolKind::kQ3pc,
                       ProtocolKind::kBroken, ProtocolKind::kPaxosCommit,
                       ProtocolKind::kBftCommit}) {
    EXPECT_EQ(parse_protocol_kind(to_string(p)), p);
  }
  for (const auto a :
       {AdversaryKind::kOnTime, AdversaryKind::kRandom, AdversaryKind::kCrash,
        AdversaryKind::kLateMsg, AdversaryKind::kPartition, AdversaryKind::kStretch,
        AdversaryKind::kAdaptive, AdversaryKind::kOmniscient,
        AdversaryKind::kByzantine}) {
    EXPECT_EQ(parse_adversary_kind(to_string(a)), a);
  }
  EXPECT_THROW((void)parse_protocol_kind("nonesuch"), CheckFailure);
  EXPECT_THROW((void)parse_adversary_kind("nonesuch"), CheckFailure);
}

TEST(Matrix, OmniscientPairsOnlyWithBenor) {
  EXPECT_TRUE(compatible(ProtocolKind::kBenor, AdversaryKind::kOmniscient));
  EXPECT_FALSE(compatible(ProtocolKind::kCommit, AdversaryKind::kOmniscient));
  EXPECT_FALSE(compatible(ProtocolKind::kTwoPc, AdversaryKind::kOmniscient));
  EXPECT_TRUE(compatible(ProtocolKind::kCommit, AdversaryKind::kAdaptive));
}

TEST(Matrix, SafetyGateFollowsThePaper) {
  // Protocol 2 and Ben-Or gate under every adversary (the paper's claim);
  // the synchronous baselines gate only when every message is on time.
  for (const auto a :
       {AdversaryKind::kOnTime, AdversaryKind::kRandom, AdversaryKind::kCrash,
        AdversaryKind::kLateMsg, AdversaryKind::kPartition, AdversaryKind::kStretch,
        AdversaryKind::kAdaptive}) {
    EXPECT_TRUE(cell_guarantees_safety(ProtocolKind::kCommit, a));
    EXPECT_TRUE(cell_guarantees_safety(ProtocolKind::kBroken, a));
  }
  EXPECT_TRUE(cell_guarantees_safety(ProtocolKind::kBenor, AdversaryKind::kOmniscient));
  EXPECT_TRUE(cell_guarantees_safety(ProtocolKind::kTwoPc, AdversaryKind::kOnTime));
  EXPECT_FALSE(cell_guarantees_safety(ProtocolKind::kTwoPc, AdversaryKind::kLateMsg));
  EXPECT_FALSE(cell_guarantees_safety(ProtocolKind::kQ3pc, AdversaryKind::kPartition));
  // Paxos Commit carries Protocol 2's crash-model guarantees; BFT commit is
  // the only protocol whose claims extend to Byzantine traitors.
  EXPECT_TRUE(
      cell_guarantees_safety(ProtocolKind::kPaxosCommit, AdversaryKind::kAdaptive));
  EXPECT_FALSE(
      cell_guarantees_safety(ProtocolKind::kPaxosCommit, AdversaryKind::kByzantine));
  EXPECT_FALSE(
      cell_guarantees_safety(ProtocolKind::kCommit, AdversaryKind::kByzantine));
  EXPECT_TRUE(
      cell_guarantees_safety(ProtocolKind::kBftCommit, AdversaryKind::kByzantine));
}

TEST(Matrix, ByzantinePlansAreConfigDeterministic) {
  CellConfig config;
  config.protocol = ProtocolKind::kBftCommit;
  config.adversary = AdversaryKind::kByzantine;
  config.n = 7;
  config.t = 3;
  config.seed = 99;
  const auto plans = cell_byzantine_plans(config);
  ASSERT_FALSE(plans.empty());
  EXPECT_LE(plans.size(), static_cast<size_t>((config.n - 1) / 3));
  const auto again = cell_byzantine_plans(config);
  ASSERT_EQ(again.size(), plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(again[i].victim, plans[i].victim);
    EXPECT_EQ(again[i].from_clock, plans[i].from_clock);
    EXPECT_EQ(again[i].seed, plans[i].seed);
  }
  // Non-Byzantine cells have no traitors, whatever the protocol.
  config.adversary = AdversaryKind::kCrash;
  EXPECT_TRUE(cell_byzantine_plans(config).empty());
}

TEST(Matrix, CellConfigSerializeRoundTrips) {
  CellConfig config;
  config.protocol = ProtocolKind::kQ3pc;
  config.adversary = AdversaryKind::kPartition;
  config.n = 7;
  config.t = 3;
  config.k = 4;
  config.seed = 0xdeadbeefcafeULL;
  config.max_events = 12345;
  const auto back = CellConfig::deserialize(config.serialize());
  EXPECT_EQ(back.protocol, config.protocol);
  EXPECT_EQ(back.adversary, config.adversary);
  EXPECT_EQ(back.n, config.n);
  EXPECT_EQ(back.t, config.t);
  EXPECT_EQ(back.k, config.k);
  EXPECT_EQ(back.seed, config.seed);
  EXPECT_EQ(back.max_events, config.max_events);
}

TEST(Matrix, EnumerationSkipsIncompatibleCells) {
  MatrixSpec spec;
  spec.protocols = {ProtocolKind::kCommit, ProtocolKind::kBenor};
  spec.adversaries = {AdversaryKind::kOnTime, AdversaryKind::kOmniscient};
  spec.ns = {3};
  spec.seeds_per_cell = 1;
  const auto cells = enumerate_cells(spec);
  // commit×ontime, benor×ontime, benor×omniscient — commit×omniscient skipped.
  ASSERT_EQ(cells.size(), 3u);
  for (const auto& cell : cells) {
    EXPECT_TRUE(compatible(cell.protocol, cell.adversary));
  }
}

TEST(Matrix, ExtendingOneAxisPreservesExistingSeeds) {
  MatrixSpec spec;
  spec.protocols = {ProtocolKind::kCommit};
  spec.adversaries = {AdversaryKind::kRandom};
  spec.ns = {3, 5};
  spec.seeds_per_cell = 2;
  const auto before = enumerate_cells(spec);

  spec.ns.push_back(7);
  spec.seeds_per_cell = 4;
  const auto after = enumerate_cells(spec);

  for (const auto& old_cell : before) {
    const auto match = std::find_if(after.begin(), after.end(), [&](const auto& c) {
      return c.n == old_cell.n && c.seed == old_cell.seed;
    });
    EXPECT_NE(match, after.end())
        << "cell " << old_cell.id() << " lost its seed after extending the matrix";
  }
}

TEST(Matrix, CellSeedsAreDistinct) {
  MatrixSpec spec;
  spec.protocols = {ProtocolKind::kCommit, ProtocolKind::kBenor, ProtocolKind::kTwoPc};
  spec.adversaries = {AdversaryKind::kOnTime, AdversaryKind::kRandom,
                      AdversaryKind::kCrash};
  spec.ns = {3, 5, 7};
  spec.seeds_per_cell = 5;
  const auto cells = enumerate_cells(spec);
  std::set<uint64_t> seeds;
  for (const auto& cell : cells) seeds.insert(cell.seed);
  EXPECT_EQ(seeds.size(), cells.size());
}

TEST(Matrix, VotesAreDeterministicAndWellFormed) {
  CellConfig config;
  config.n = 9;
  config.seed = 77;
  const auto a = cell_votes(config);
  const auto b = cell_votes(config);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 9u);
  for (const int v : a) EXPECT_TRUE(v == 0 || v == 1);
}

// --- pool -------------------------------------------------------------------

TEST(Pool, ExecutesEveryJobExactlyOnce) {
  WorkStealingPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  const auto executed = pool.run(100, [&](int64_t i) { ++hits[static_cast<size_t>(i)]; });
  ASSERT_EQ(executed.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(executed[static_cast<size_t>(i)]);
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1);
  }
}

TEST(Pool, SingleThreadRunsInline) {
  WorkStealingPool pool(1);
  int64_t sum = 0;  // no synchronization needed: inline execution
  const auto executed = pool.run(10, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum, 45);
  EXPECT_TRUE(std::all_of(executed.begin(), executed.end(), [](char c) { return c; }));
}

TEST(Pool, ExpiredDeadlineDropsAllJobs) {
  WorkStealingPool pool(4);
  std::atomic<int> ran{0};
  const auto executed = pool.run(
      50, [&](int64_t) { ++ran; },
      std::chrono::steady_clock::now() - std::chrono::seconds(1));
  EXPECT_EQ(ran.load(), 0);
  EXPECT_TRUE(std::none_of(executed.begin(), executed.end(), [](char c) { return c; }));
}

TEST(Pool, EightThreadsGiveAtLeastFourTimesThroughputOnBlockingJobs) {
  // The ISSUE's scaling target, measured with blocking jobs so the result
  // holds on any machine (including single-core CI runners, where CPU-bound
  // wall-clock scaling is physically impossible to observe). 16 × 20 ms jobs:
  // serial floor is 320 ms; 8 workers need only two 20 ms waves.
  const auto job = [](int64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  const auto timed = [&](int threads) {
    WorkStealingPool pool(threads);
    const auto start = std::chrono::steady_clock::now();
    (void)pool.run(16, job);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };
  const double serial = timed(1);
  const double parallel = timed(8);
  EXPECT_GE(serial / parallel, 4.0)
      << "serial " << serial << "s vs 8-thread " << parallel << "s";
}

TEST(Pool, ExceptionPropagatesToCaller) {
  WorkStealingPool pool(4);
  EXPECT_THROW(pool.run(20,
                        [&](int64_t i) {
                          if (i == 7) RCOMMIT_CHECK_MSG(false, "job 7 exploded");
                        }),
               CheckFailure);
}

// --- swarm: full-matrix safety sweep ---------------------------------------

MatrixSpec small_full_matrix() {
  MatrixSpec spec;
  spec.protocols = {ProtocolKind::kCommit,      ProtocolKind::kBenor,
                    ProtocolKind::kTwoPc,       ProtocolKind::kQ3pc,
                    ProtocolKind::kPaxosCommit, ProtocolKind::kBftCommit};
  spec.adversaries = {AdversaryKind::kOnTime,    AdversaryKind::kRandom,
                      AdversaryKind::kCrash,     AdversaryKind::kLateMsg,
                      AdversaryKind::kPartition, AdversaryKind::kStretch,
                      AdversaryKind::kAdaptive,  AdversaryKind::kOmniscient,
                      AdversaryKind::kByzantine};
  spec.ns = {3, 5};
  spec.seeds_per_cell = 3;
  spec.base_seed = 20260806;
  return spec;
}

TEST(Swarm, FullMatrixHasZeroInvariantViolations) {
  SwarmOptions options;
  options.matrix = small_full_matrix();
  options.threads = 4;
  const auto summary = run_swarm(options);

  EXPECT_GT(summary.runs_executed, 0);
  EXPECT_EQ(summary.runs_executed, summary.cells_total);
  EXPECT_EQ(summary.violations, 0)
      << "first violation: "
      << (summary.violation_reports.empty() ? "?"
                                            : summary.violation_reports[0].config.id() +
                                                  ": " +
                                                  summary.violation_reports[0].detail);
  // Every (protocol, adversary) group in the sweep actually ran.
  for (const auto& group : summary.groups) {
    EXPECT_GT(group.runs, 0) << to_string(group.protocol) << "×"
                             << to_string(group.adversary);
  }
}

TEST(Swarm, AggregateJsonIsByteIdenticalAcrossThreadCounts) {
  SwarmOptions options;
  options.matrix = small_full_matrix();
  options.matrix.seeds_per_cell = 2;

  options.threads = 1;
  const auto single = run_swarm(options);
  options.threads = 8;
  const auto parallel = run_swarm(options);

  EXPECT_EQ(single.aggregate_json(options.matrix),
            parallel.aggregate_json(options.matrix));
}

TEST(Swarm, ExpectedDivergenceIsCountedNotGated) {
  // 2PC under the stretch adversary (every message later than K) is the
  // paper's §1 failure scenario: it may diverge, but that must be counted as
  // expected divergence, never as a gating violation.
  SwarmOptions options;
  options.matrix.protocols = {ProtocolKind::kTwoPc};
  options.matrix.adversaries = {AdversaryKind::kStretch, AdversaryKind::kLateMsg};
  options.matrix.ns = {3, 5};
  options.matrix.seeds_per_cell = 5;
  const auto summary = run_swarm(options);
  EXPECT_EQ(summary.violations, 0);
}

TEST(Swarm, RunCellProducesMeasurementsOnCleanRuns) {
  CellConfig config;
  config.protocol = ProtocolKind::kCommit;
  config.adversary = AdversaryKind::kOnTime;
  config.n = 5;
  config.t = 2;
  config.seed = 42;
  const auto outcome = run_cell(config);
  EXPECT_FALSE(outcome.violation) << outcome.violation_detail;
  EXPECT_TRUE(outcome.all_decided);
  EXPECT_GT(outcome.rounds, 0);
  EXPECT_GT(outcome.ticks, 0);
  EXPECT_GT(outcome.messages, 0);
}

TEST(Swarm, ConflictingDecisionsBecomeReportedViolationNotCrash) {
  // The broken fleet decides COMMIT on one processor and ABORT on another;
  // RunResult::agreed_decision() throws CheckFailure on that conflict. The
  // worker must convert it into a reported violation so the pool survives.
  CellConfig config;
  config.protocol = ProtocolKind::kBroken;
  config.adversary = AdversaryKind::kRandom;
  config.n = 5;
  config.t = 2;
  config.seed = 7;
  const auto outcome = run_cell(config);  // must not throw
  EXPECT_TRUE(outcome.violation);
  EXPECT_FALSE(outcome.violation_detail.empty());
  EXPECT_FALSE(outcome.schedule.actions.empty());
  EXPECT_TRUE(replay_still_violates(config, outcome.schedule));
}

}  // namespace
}  // namespace rcommit::swarm
