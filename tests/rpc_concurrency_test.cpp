// Concurrency and recovery integration tests for the shard service:
// overlapping transactions from multiple clients, interleaved commit
// sessions, TCP-backed clusters, and full crash/restart/recover cycles.
// RCOMMIT_LINT_ALLOW_FILE(R2): this test exists to hammer the RPC server from concurrent clients
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>

#include "db/kv.h"
#include "db/recovery.h"
#include "db/rpc.h"
#include "transport/network.h"
#include "transport/tcp.h"

namespace rcommit::db {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class RpcClusterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = fs::temp_directory_path() /
           ("rcommit_rpcc_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] fs::path wal_path(int shard) const {
    return dir_ / ("shard-" + std::to_string(shard) + ".wal");
  }

  fs::path dir_;
};

TEST_F(RpcClusterFixture, TwoClientsDisjointKeysBothCommit) {
  constexpr int kShards = 3;
  transport::InMemoryNetwork net(kShards + 2, 31,
                                 {.min_delay = 20us, .max_delay = 200us});
  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<ShardServer>> servers;
  for (int i = 0; i < kShards; ++i) {
    stores.push_back(std::make_unique<KvStore>(wal_path(i)));
    servers.push_back(std::make_unique<ShardServer>(
        ShardServer::Options{.node_id = i, .seed = 400 + static_cast<uint64_t>(i)},
        *stores.back(), net));
  }
  net.start();
  for (auto& server : servers) server->start();

  // Two clients run overlapping (in time) transactions on disjoint keys —
  // their commit sessions interleave on the same shard servers.
  auto run_client = [&net](ProcId id, TxnId txn, const std::string& prefix) {
    DbTxnClient client(id, net);
    return client.execute(txn,
                          {{0, {{prefix + ":a", "1"}}},
                           {1, {{prefix + ":b", "2"}}},
                           {2, {{prefix + ":c", "3"}}}},
                          5000ms);
  };
  auto f1 = std::async(std::launch::async, run_client, kShards, 101, "left");
  auto f2 = std::async(std::launch::async, run_client, kShards + 1, 102, "right");
  const auto o1 = f1.get();
  const auto o2 = f2.get();
  ASSERT_TRUE(o1.has_value());
  ASSERT_TRUE(o2.has_value());
  EXPECT_EQ(*o1, Decision::kCommit);
  EXPECT_EQ(*o2, Decision::kCommit);

  DbTxnClient reader(kShards, net);
  EXPECT_EQ(reader.get(0, "left:a", 1000ms), "1");
  EXPECT_EQ(reader.get(0, "right:a", 1000ms), "1");

  for (auto& server : servers) server->stop();
  net.stop();
}

TEST_F(RpcClusterFixture, TwoClientsSameKeyAtMostOneCommits) {
  constexpr int kShards = 2;
  transport::InMemoryNetwork net(kShards + 2, 37,
                                 {.min_delay = 20us, .max_delay = 200us});
  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<ShardServer>> servers;
  for (int i = 0; i < kShards; ++i) {
    stores.push_back(std::make_unique<KvStore>(wal_path(i)));
    servers.push_back(std::make_unique<ShardServer>(
        ShardServer::Options{.node_id = i, .seed = 500 + static_cast<uint64_t>(i)},
        *stores.back(), net));
  }
  net.start();
  for (auto& server : servers) server->start();

  auto run_client = [&net](ProcId id, TxnId txn, const std::string& value) {
    DbTxnClient client(id, net);
    return client.execute(
        txn, {{0, {{"contested", value}}}, {1, {{"contested", value}}}}, 5000ms);
  };
  auto f1 = std::async(std::launch::async, run_client, kShards, 201, "one");
  auto f2 = std::async(std::launch::async, run_client, kShards + 1, 202, "two");
  const auto o1 = f1.get();
  const auto o2 = f2.get();
  ASSERT_TRUE(o1.has_value());
  ASSERT_TRUE(o2.has_value());
  // No-wait locking: at most one can commit; both aborting is legal (each
  // grabbed the key on a different shard first).
  const int commits = (*o1 == Decision::kCommit ? 1 : 0) +
                      (*o2 == Decision::kCommit ? 1 : 0);
  EXPECT_LE(commits, 1);

  // Whatever happened, the two shards agree on the final value.
  DbTxnClient reader(kShards, net);
  const auto v0 = reader.get(0, "contested", 1000ms);
  const auto v1 = reader.get(1, "contested", 1000ms);
  EXPECT_EQ(v0, v1);

  for (auto& server : servers) server->stop();
  net.stop();
}

TEST_F(RpcClusterFixture, ClusterOverTcpSockets) {
  constexpr int kShards = 2;
  transport::TcpNetwork net(kShards + 1);
  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<ShardServer>> servers;
  for (int i = 0; i < kShards; ++i) {
    stores.push_back(std::make_unique<KvStore>(wal_path(i)));
    servers.push_back(std::make_unique<ShardServer>(
        ShardServer::Options{.node_id = i, .seed = 600 + static_cast<uint64_t>(i)},
        *stores.back(), net));
  }
  net.start();
  for (auto& server : servers) server->start();

  DbTxnClient client(kShards, net);
  const auto outcome =
      client.execute(301, {{0, {{"tcp:a", "x"}}}, {1, {{"tcp:b", "y"}}}}, 5000ms);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, Decision::kCommit);
  EXPECT_EQ(client.get(0, "tcp:a", 2000ms), "x");
  EXPECT_EQ(client.get(1, "tcp:b", 2000ms), "y");

  for (auto& server : servers) server->stop();
  net.stop();
}

TEST_F(RpcClusterFixture, CrashRestartRecoverResolvesInDoubt) {
  // Phase 1: run a cluster, commit one transaction, then manufacture an
  // in-doubt state by preparing directly on the stores (as a crash between
  // vote and decision would leave them) and "crash" the whole cluster.
  {
    constexpr int kShards = 2;
    transport::InMemoryNetwork net(kShards + 1, 41,
                                   {.min_delay = 20us, .max_delay = 150us});
    std::vector<std::unique_ptr<KvStore>> stores;
    std::vector<std::unique_ptr<ShardServer>> servers;
    for (int i = 0; i < kShards; ++i) {
      stores.push_back(std::make_unique<KvStore>(wal_path(i)));
      servers.push_back(std::make_unique<ShardServer>(
          ShardServer::Options{.node_id = i, .seed = 700 + static_cast<uint64_t>(i)},
          *stores.back(), net));
    }
    net.start();
    for (auto& server : servers) server->start();
    DbTxnClient client(kShards, net);
    ASSERT_EQ(client.execute(401, {{0, {{"safe", "1"}}}, {1, {{"safe", "1"}}}},
                             5000ms),
              Decision::kCommit);
    for (auto& server : servers) server->stop();
    net.stop();
    // The in-doubt transaction: both shards prepared, no outcome recorded.
    ASSERT_TRUE(stores[0]->prepare(402, {{"doubt", "A"}}));
    ASSERT_TRUE(stores[1]->prepare(402, {{"doubt", "B"}}));
    // Cluster dies here (stores destroyed without resolving 402).
  }

  // Phase 2: restart the stores from their WALs and run recovery.
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  EXPECT_EQ(shard0.get("safe"), "1");
  ASSERT_EQ(shard0.in_doubt(), std::vector<TxnId>{402});
  ASSERT_EQ(shard1.in_doubt(), std::vector<TxnId>{402});

  RecoveryManager recovery({&shard0, &shard1}, {.seed = 13});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.reran_protocol, 1);
  EXPECT_TRUE(shard0.in_doubt().empty());
  EXPECT_TRUE(shard1.in_doubt().empty());
  // Uniform outcome across shards.
  EXPECT_EQ(shard0.get("doubt").has_value(), shard1.get("doubt").has_value());
}

}  // namespace
}  // namespace rcommit::db
