// Fine-grained tests of protocol internals: message types and debug strings,
// the invariant checkers, the claim-report helper, and step-by-step phase
// transitions of Protocol 2 observed on hand-driven contexts.
#include <gtest/gtest.h>

#include <sstream>

#include "adversary/basic.h"
#include "metrics/report.h"
#include "protocol/commit.h"
#include "protocol/invariants.h"
#include "protocol/messages.h"
#include "sim/simulator.h"

namespace rcommit::protocol {
namespace {

// --- messages ---------------------------------------------------------------------

TEST(Messages, DebugStringsAreInformative) {
  EXPECT_EQ(AgreementR1(3, 1).debug_string(), "(1,3,1)");
  EXPECT_EQ(AgreementR2(2, 0).debug_string(), "(2,2,0)");
  EXPECT_NE(AgreementR2(2, kBottom).debug_string().find("⊥"), std::string::npos);
  EXPECT_EQ(DecidedMsg(1).debug_string(), "DECIDED(1)");
  EXPECT_EQ(GoMsg().debug_string(), "GO");
  EXPECT_EQ(VoteMsg(0).debug_string(), "VOTE(0)");
  const auto inner = sim::make_message<VoteMsg>(1);
  EXPECT_EQ(PiggybackedMsg({1, 0}, inner).debug_string(), "GO+VOTE(1)");
}

TEST(Messages, R2BottomIsNotAnSMessage) {
  EXPECT_FALSE(AgreementR2(1, kBottom).is_s_message());
  EXPECT_TRUE(AgreementR2(1, 0).is_s_message());
  EXPECT_TRUE(AgreementR2(1, 1).is_s_message());
}

TEST(Messages, MsgCastDiscriminates) {
  const auto msg = sim::make_message<AgreementR1>(1, 1);
  EXPECT_NE(sim::msg_cast<AgreementR1>(msg), nullptr);
  EXPECT_EQ(sim::msg_cast<AgreementR2>(msg), nullptr);
  EXPECT_EQ(sim::msg_cast<VoteMsg>(msg), nullptr);
}

// --- invariant checkers ----------------------------------------------------------------

sim::RunResult make_result(std::vector<std::optional<Decision>> decisions,
                           std::vector<bool> crashed) {
  sim::RunResult result;
  result.decisions = std::move(decisions);
  result.crashed = std::move(crashed);
  result.trace.n = static_cast<int32_t>(result.decisions.size());
  result.trace.crashed = result.crashed;
  result.trace.decide_clock.assign(result.decisions.size(), std::nullopt);
  result.trace.decide_event.assign(result.decisions.size(), std::nullopt);
  return result;
}

TEST(Invariants, AgreementDetectsConflict) {
  auto good = make_result({Decision::kCommit, Decision::kCommit}, {false, false});
  EXPECT_TRUE(agreement_holds(good));
  auto bad = make_result({Decision::kCommit, Decision::kAbort}, {false, false});
  EXPECT_FALSE(agreement_holds(bad));
}

TEST(Invariants, AgreementIgnoresUndecided) {
  auto partial = make_result({Decision::kAbort, std::nullopt}, {false, false});
  EXPECT_TRUE(agreement_holds(partial));
}

TEST(Invariants, AbortValidityFlagsWrongCommit) {
  auto bad = make_result({Decision::kCommit, Decision::kCommit}, {false, false});
  EXPECT_FALSE(abort_validity_holds(bad, {1, 0}));
  EXPECT_TRUE(abort_validity_holds(bad, {1, 1}));  // vacuous: nobody wanted abort
  auto good = make_result({Decision::kAbort, Decision::kAbort}, {false, false});
  EXPECT_TRUE(abort_validity_holds(good, {1, 0}));
}

TEST(Invariants, AbortValidityHoldsOnUndecidedRuns) {
  auto blocked = make_result({std::nullopt, std::nullopt}, {false, false});
  EXPECT_TRUE(abort_validity_holds(blocked, {0, 1}));
}

TEST(Invariants, AgreementValidityVacuousOnMixedInputs) {
  auto result = make_result({Decision::kCommit, Decision::kCommit}, {false, false});
  EXPECT_TRUE(agreement_validity_holds(result, {0, 1}));
  EXPECT_FALSE(agreement_validity_holds(result, {0, 0}));
  EXPECT_TRUE(agreement_validity_holds(result, {1, 1}));
}

TEST(Invariants, CheckCommitConditionsThrowsWithDescription) {
  auto bad = make_result({Decision::kCommit, Decision::kAbort}, {false, false});
  try {
    check_commit_conditions(bad, {1, 1}, 1);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("agreement"), std::string::npos);
  }
}

// --- claim report ------------------------------------------------------------------------

TEST(Report, PrintsVerdictsAndSummary) {
  std::ostringstream os;
  metrics::print_claim_report(os, "demo",
                              {{"C1", "x <= 4", "3.2", true},
                               {"C2", "y grows", "flat", false}});
  const auto text = os.str();
  EXPECT_NE(text.find("=== demo ==="), std::string::npos);
  EXPECT_NE(text.find("OK"), std::string::npos);
  EXPECT_NE(text.find("MISMATCH"), std::string::npos);
  EXPECT_NE(text.find("1/2 claims hold"), std::string::npos);
}

// --- Protocol 2 phase walk-through ----------------------------------------------------------

TEST(CommitPhases, CoordinatorWalksThroughAllPhases) {
  // Observe the coordinator's phase at each point of a clean delay-1 run.
  const SystemParams params{.n = 3, .t = 1, .k = 2};
  sim::Simulator sim({.seed = 50}, make_commit_fleet(params, {1, 1, 1}),
                     adversary::make_on_time_adversary());
  const auto result = sim.run();
  ASSERT_EQ(result.status, sim::RunStatus::kAllDecided);
  const auto& coordinator =
      dynamic_cast<const CommitProcess&>(*sim.processes()[0]);
  EXPECT_TRUE(coordinator.is_coordinator());
  EXPECT_EQ(coordinator.phase(), CommitProcess::Phase::kAgreement);
  EXPECT_EQ(coordinator.agreement_input(), 1);
  EXPECT_EQ(coordinator.current_vote(), 1);
  ASSERT_NE(coordinator.agreement_core(), nullptr);
  EXPECT_TRUE(coordinator.agreement_core()->decided());
}

TEST(CommitPhases, AborterCarriesZeroIntoAgreement) {
  const SystemParams params{.n = 3, .t = 1, .k = 2};
  sim::Simulator sim({.seed = 51}, make_commit_fleet(params, {1, 0, 1}),
                     adversary::make_on_time_adversary());
  const auto result = sim.run();
  ASSERT_EQ(result.status, sim::RunStatus::kAllDecided);
  for (const auto& proc : sim.processes()) {
    const auto& commit = dynamic_cast<const CommitProcess&>(*proc);
    // Everyone saw the 0 vote, so every agreement input is 0 (line 9-11).
    EXPECT_EQ(commit.agreement_input(), 0);
  }
  EXPECT_EQ(result.agreed_decision(), Decision::kAbort);
}

TEST(CommitPhases, NonCoordinatorWaitsInAwaitGoWithoutTraffic) {
  // A lone non-coordinator (simulate n = 2, schedule only processor 1):
  // it must sit in kAwaitGo forever — line 2 has no timeout.
  const SystemParams params{.n = 2, .t = 0, .k = 2};

  /// Adversary that only ever schedules processor 1 and delivers nothing.
  class OnlyProcOne final : public sim::Adversary {
   public:
    void next(const sim::PatternView&, sim::Action& action) override {
      action.proc = 1;
    }
  };

  sim::Simulator sim({.seed = 52, .max_events = 500},
                     make_commit_fleet(params, {1, 1}),
                     std::make_unique<OnlyProcOne>());
  const auto result = sim.run();
  EXPECT_EQ(result.status, sim::RunStatus::kEventLimit);
  const auto& participant = dynamic_cast<const CommitProcess&>(*sim.processes()[1]);
  EXPECT_EQ(participant.phase(), CommitProcess::Phase::kAwaitGo);
  EXPECT_FALSE(participant.decided());
}

TEST(CommitPhases, GoTimeoutSwitchesVote) {
  // Schedule everyone but withhold all messages: after 2K own-clock ticks in
  // kCollectGo the vote flips to abort (lines 5-6).
  const SystemParams params{.n = 3, .t = 1, .k = 2};

  /// Round-robin scheduling, zero deliveries, forever.
  class BlackHole final : public sim::Adversary {
   public:
    void next(const sim::PatternView& view, sim::Action& action) override {
      action.proc = next_;
      next_ = (next_ + 1) % view.n();
    }

   private:
    ProcId next_ = 0;
  };

  sim::Simulator sim({.seed = 53, .max_events = 200},
                     make_commit_fleet(params, {1, 1, 1}),
                     std::make_unique<BlackHole>());
  (void)sim.run();
  const auto& coordinator = dynamic_cast<const CommitProcess&>(*sim.processes()[0]);
  // The coordinator got past kCollectGo via timeout and flipped its vote.
  EXPECT_NE(coordinator.phase(), CommitProcess::Phase::kCollectGo);
  EXPECT_EQ(coordinator.current_vote(), 0);
  // Participants never received the GO (nothing was delivered), so they are
  // still waiting at line 2.
  const auto& participant = dynamic_cast<const CommitProcess&>(*sim.processes()[1]);
  EXPECT_EQ(participant.phase(), CommitProcess::Phase::kAwaitGo);
}

}  // namespace
}  // namespace rcommit::protocol
