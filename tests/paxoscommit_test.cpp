// Tests for the Paxos Commit baseline: the F=0 ≡ 2PC reduction (Gray &
// Lamport §4.1), nonblocking recovery from a dead ballot-0 leader, safety
// under message lateness, and determinism of the whole construction.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "adversary/latemsg.h"
#include "baselines/paxoscommit.h"
#include "baselines/twopc.h"
#include "protocol/invariants.h"
#include "sim/simulator.h"

namespace rcommit::baselines {
namespace {

using sim::RunStatus;
using sim::Simulator;

std::vector<std::unique_ptr<sim::Process>> paxos_fleet(const std::vector<int>& votes,
                                                       int32_t f = -1,
                                                       Tick timeout = 0) {
  const auto n = static_cast<int32_t>(votes.size());
  const SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int vote : votes) {
    PaxosCommitProcess::Options options;
    options.params = params;
    options.initial_vote = vote;
    options.f = f;
    options.timeout = timeout;
    fleet.push_back(std::make_unique<PaxosCommitProcess>(options));
  }
  return fleet;
}

std::vector<std::unique_ptr<sim::Process>> twopc_fleet(const std::vector<int>& votes) {
  const auto n = static_cast<int32_t>(votes.size());
  const SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int vote : votes) {
    TwoPcProcess::Options options;
    options.params = params;
    options.initial_vote = vote;
    options.policy = TwoPcTimeoutPolicy::kPresumeAbort;
    fleet.push_back(std::make_unique<TwoPcProcess>(options));
  }
  return fleet;
}

TEST(PaxosCommit, AllYesCommits) {
  Simulator sim({.seed = 1}, paxos_fleet({1, 1, 1, 1, 1}),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kCommit);
}

TEST(PaxosCommit, OneNoAborts) {
  Simulator sim({.seed = 2}, paxos_fleet({1, 1, 0, 1, 1}),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kAbort);
}

TEST(PaxosCommit, F0MatchesTwoPcDecisionsOnEveryVoteVector) {
  // The Gray–Lamport degenerate case: one acceptor colocated with the
  // ballot-0 leader. On the on-time failure-free path the decisions must
  // match presume-abort 2PC on every vote vector of n=5.
  for (int mask = 0; mask < 32; ++mask) {
    std::vector<int> votes(5);
    for (int bit = 0; bit < 5; ++bit) votes[static_cast<size_t>(bit)] = (mask >> bit) & 1;

    Simulator paxos({.seed = 77}, paxos_fleet(votes, /*f=*/0),
                    adversary::make_on_time_adversary());
    const auto paxos_result = paxos.run();
    Simulator twopc({.seed = 77}, twopc_fleet(votes),
                    adversary::make_on_time_adversary());
    const auto twopc_result = twopc.run();

    ASSERT_EQ(paxos_result.status, RunStatus::kAllDecided) << "votes mask " << mask;
    ASSERT_EQ(twopc_result.status, RunStatus::kAllDecided) << "votes mask " << mask;
    for (size_t p = 0; p < votes.size(); ++p) {
      EXPECT_EQ(*paxos_result.decisions[p], *twopc_result.decisions[p])
          << "votes mask " << mask << " proc " << p;
    }
  }
}

TEST(PaxosCommit, F0MatchesTwoPcMessageCountOnTheCommitPath) {
  // Same degenerate case, all-yes failure-free: the message pattern collapses
  // to exactly 2PC's (begin ↔ vote-req, 2a votes ↔ yes votes, outcome ↔
  // decision broadcast), so the counts are equal — the headline §4.1 claim.
  for (int32_t n : {3, 5, 7}) {
    const std::vector<int> votes(static_cast<size_t>(n), 1);
    Simulator paxos({.seed = 5}, paxos_fleet(votes, /*f=*/0),
                    adversary::make_on_time_adversary());
    const auto paxos_result = paxos.run();
    Simulator twopc({.seed = 5}, twopc_fleet(votes),
                    adversary::make_on_time_adversary());
    const auto twopc_result = twopc.run();
    ASSERT_EQ(paxos_result.status, RunStatus::kAllDecided);
    ASSERT_EQ(twopc_result.status, RunStatus::kAllDecided);
    EXPECT_EQ(paxos_result.messages_sent, twopc_result.messages_sent) << "n " << n;
  }
}

TEST(PaxosCommit, LeaderCrashBeforeBeginRecoversToAbort) {
  // The ballot-0 leader dies before its begin broadcast reaches anyone: no
  // instance ever sees a Prepared proposal, so the rotating recovery leaders
  // find every instance free, propose Aborted, and everyone left aborts —
  // where blocking 2PC would wait forever. This is the nonblocking claim.
  adversary::CrashPlan plan{.victim = 0, .at_clock = 1,
                            .suppress_sends_to = {1, 2, 3, 4}};
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::vector<adversary::CrashPlan>{plan});
  Simulator sim({.seed = 6, .max_events = 50'000}, paxos_fleet({1, 1, 1, 1, 1}),
                std::move(adv));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (ProcId p = 1; p < 5; ++p) {
    EXPECT_EQ(result.decisions[static_cast<size_t>(p)], Decision::kAbort)
        << "proc " << p;
  }
}

TEST(PaxosCommit, LeaderCrashMidBroadcastStaysConsistent) {
  // Whatever mix of participants saw the begin (and registered Prepared with
  // the surviving acceptors), the recovery leaders must keep the survivors
  // unanimous.
  for (int mask = 0; mask < 16; ++mask) {
    adversary::CrashPlan plan;
    plan.victim = 0;
    plan.at_clock = 1;
    for (int bit = 0; bit < 4; ++bit) {
      if ((mask >> bit) & 1) plan.suppress_sends_to.push_back(1 + bit);
    }
    auto adv = std::make_unique<adversary::CrashAdversary>(
        adversary::make_on_time_adversary(),
        std::vector<adversary::CrashPlan>{plan});
    Simulator sim({.seed = 7 + static_cast<uint64_t>(mask), .max_events = 50'000},
                  paxos_fleet({1, 1, 1, 1, 1}), std::move(adv));
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided) << "mask " << mask;
    EXPECT_FALSE(result.has_conflicting_decisions()) << "mask " << mask;
  }
}

TEST(PaxosCommit, LateOutcomeNeverSplitsDecisions) {
  // The paper's C13 shape: outcome and vote messages held far past every
  // timeout, so recovery leaders race the original ballot. Paxos Commit's
  // safety is a quorum-intersection argument, not a timeout argument — the
  // stragglers may be slow but never disagree.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    std::vector<adversary::LateRule> rules;
    rules.push_back({.from = 0, .to = 1, .nth = 0, .extra_delay = 200});
    rules.push_back({.from = 0, .to = 2, .nth = 1, .extra_delay = 200});
    rules.push_back({.from = 3, .to = 0, .nth = 0, .extra_delay = 200});
    auto adv = std::make_unique<adversary::LateMessageAdversary>(std::move(rules));
    Simulator sim({.seed = 100 + seed, .max_events = 50'000},
                  paxos_fleet({1, 1, 1, 1, 1}), std::move(adv));
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided) << "seed " << seed;
    EXPECT_FALSE(result.has_conflicting_decisions()) << "seed " << seed;
  }
}

TEST(PaxosCommit, RandomSweepHoldsCommitInvariants) {
  // Mixed votes, random fair schedules: agreement and abort validity must
  // hold on every run (and every run must terminate — the quadratic recovery
  // backoff guarantees some leader eventually runs unchallenged).
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::vector<int> votes(7);
    RandomTape vote_tape(900 + seed);
    for (auto& v : votes) v = vote_tape.flip();
    Simulator sim({.seed = 300 + seed, .max_events = 100'000},
                  paxos_fleet(votes),
                  adversary::make_random_adversary(300 + seed, /*max_delay=*/6));
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided) << "seed " << seed;
    EXPECT_TRUE(protocol::agreement_holds(result)) << "seed " << seed;
    EXPECT_TRUE(protocol::abort_validity_holds(result, votes)) << "seed " << seed;
  }
}

TEST(PaxosCommit, SameSeedSameRun) {
  const auto run_once = [] {
    Simulator sim({.seed = 42}, paxos_fleet({1, 0, 1, 1, 0}),
                  adversary::make_random_adversary(42, /*max_delay=*/4));
    return sim.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.events, b.events);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t p = 0; p < a.decisions.size(); ++p) {
    EXPECT_EQ(a.decisions[p], b.decisions[p]) << "proc " << p;
  }
}

}  // namespace
}  // namespace rcommit::baselines
