// Tests for the simulation substrate: event application, buffers, crashes,
// determinism, trace recording, lateness classification, and the
// asynchronous-round analyzer.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "common/check.h"
#include "sim/message.h"
#include "sim/ontime.h"
#include "sim/process.h"
#include "sim/rounds.h"
#include "sim/simulator.h"

namespace rcommit::sim {
namespace {

/// Trivial payload carrying an integer.
class IntMsg final : public MessageBase {
 public:
  explicit IntMsg(int value) : value_(value) {}
  [[nodiscard]] int value() const { return value_; }
  [[nodiscard]] std::string debug_string() const override {
    return "Int(" + std::to_string(value_) + ")";
  }

 private:
  int value_;
};

/// Test process: broadcasts its id once, decides Commit after hearing from
/// everyone (including itself).
class EchoProcess final : public Process {
 public:
  void on_step(StepContext& ctx, std::span<const Envelope> delivered) override {
    if (!sent_) {
      sent_ = true;
      ctx.broadcast(make_message<IntMsg>(ctx.self()));
    }
    for (const auto& env : delivered) {
      const auto* m = msg_cast<IntMsg>(env.payload);
      ASSERT_NE(m, nullptr);
      heard_ |= 1u << m->value();
    }
    if (heard_ == (1u << ctx.n()) - 1) decided_ = true;
  }
  [[nodiscard]] bool decided() const override { return decided_; }
  [[nodiscard]] Decision decision() const override { return Decision::kCommit; }

 private:
  bool sent_ = false;
  unsigned heard_ = 0;
  bool decided_ = false;
};

std::vector<std::unique_ptr<Process>> echo_fleet(int n) {
  std::vector<std::unique_ptr<Process>> fleet;
  for (int i = 0; i < n; ++i) fleet.push_back(std::make_unique<EchoProcess>());
  return fleet;
}

TEST(Simulator, EchoFleetAllDecide) {
  Simulator sim({.seed = 1}, echo_fleet(4), adversary::make_on_time_adversary());
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_TRUE(result.all_nonfaulty_decided());
  EXPECT_EQ(result.messages_sent, 16);  // 4 broadcasts to 4 recipients
}

TEST(Simulator, DeterministicGivenSeed) {
  auto run_once = [](uint64_t seed) {
    Simulator sim({.seed = seed}, echo_fleet(5), adversary::make_random_adversary(7, 4));
    return sim.run();
  };
  const auto a = run_once(123);
  const auto b = run_once(123);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  ASSERT_EQ(a.trace.events.size(), b.trace.events.size());
  for (size_t i = 0; i < a.trace.events.size(); ++i) {
    EXPECT_EQ(a.trace.events[i].proc, b.trace.events[i].proc);
    EXPECT_EQ(a.trace.events[i].delivered, b.trace.events[i].delivered);
  }
}

TEST(Simulator, EventLimitStopsBlockedRun) {
  /// A process that never decides.
  class Mute final : public Process {
   public:
    void on_step(StepContext&, std::span<const Envelope>) override {}
    [[nodiscard]] bool decided() const override { return false; }
    [[nodiscard]] Decision decision() const override { return Decision::kAbort; }
  };
  std::vector<std::unique_ptr<Process>> fleet;
  fleet.push_back(std::make_unique<Mute>());
  fleet.push_back(std::make_unique<Mute>());
  Simulator sim({.seed = 1, .max_events = 100}, std::move(fleet),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kEventLimit);
  EXPECT_EQ(result.events, 100);
}

TEST(Simulator, CrashedProcessorTakesNoMoreSteps) {
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(),
      std::vector<adversary::CrashPlan>{{.victim = 0, .at_clock = 1, .suppress_sends_to = {}}});
  Simulator sim({.seed = 1, .max_events = 200}, echo_fleet(3), std::move(adv));
  const auto result = sim.run();
  EXPECT_TRUE(result.crashed[0]);
  // Processor 0 died on a pure failure step before broadcasting, so 1 and 2
  // can never hear from it and never decide.
  EXPECT_FALSE(result.decisions[1].has_value());
  EXPECT_FALSE(result.decisions[2].has_value());
  // Its clock never advanced.
  for (const auto& ev : result.trace.events) {
    if (ev.proc == 0) {
      EXPECT_TRUE(ev.crash);
    }
  }
}

TEST(Simulator, MidBroadcastCrashDeliversPartialSends) {
  // Processor 0 executes its first step (the broadcast) but its sends to
  // processor 2 are suppressed: 1 hears from 0, 2 does not.
  adversary::CrashPlan plan;
  plan.victim = 0;
  plan.at_clock = 1;
  plan.suppress_sends_to = {2};
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::vector<adversary::CrashPlan>{plan});
  Simulator sim({.seed = 1, .max_events = 500}, echo_fleet(3), std::move(adv));
  const auto result = sim.run();
  EXPECT_TRUE(result.crashed[0]);
  EXPECT_FALSE(result.decisions[2].has_value());
  // Processor 1 heard all three and decided.
  EXPECT_TRUE(result.decisions[1].has_value());
}

TEST(Simulator, AgreedDecisionThrowsOnConflict) {
  RunResult result;
  result.decisions = {Decision::kCommit, Decision::kAbort};
  result.crashed = {false, false};
  EXPECT_TRUE(result.has_conflicting_decisions());
  EXPECT_THROW((void)result.agreed_decision(), CheckFailure);
}

/// Decides by identity: processor 0 commits, everyone else aborts. Used to
/// produce a *real* conflicting run (not a hand-built RunResult).
class DisagreeProcess final : public Process {
 public:
  void on_step(StepContext& ctx, std::span<const Envelope> delivered) override {
    (void)delivered;
    decision_ = ctx.self() == 0 ? Decision::kCommit : Decision::kAbort;
  }
  [[nodiscard]] bool decided() const override { return decision_.has_value(); }
  [[nodiscard]] Decision decision() const override { return *decision_; }
  [[nodiscard]] bool halted() const override { return decided(); }

 private:
  std::optional<Decision> decision_;
};

TEST(Simulator, ConflictingRunCompletesAndReportsConflict) {
  // The simulator itself must not police agreement: a broken protocol's run
  // completes normally, the conflict is visible via has_conflicting_decisions,
  // and only agreed_decision() refuses. Callers that aggregate decisions
  // (swarm workers, metrics) rely on this split to turn conflicts into
  // reported violations instead of crashes.
  std::vector<std::unique_ptr<Process>> fleet;
  for (int i = 0; i < 3; ++i) fleet.push_back(std::make_unique<DisagreeProcess>());
  Simulator sim({.seed = 1, .max_events = 100}, std::move(fleet),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_TRUE(result.has_conflicting_decisions());
  EXPECT_THROW((void)result.agreed_decision(), CheckFailure);
  EXPECT_EQ(result.decisions[0], Decision::kCommit);
  EXPECT_EQ(result.decisions[1], Decision::kAbort);
}

TEST(Simulator, TraceRecordsMessageLifecycles) {
  Simulator sim({.seed = 1}, echo_fleet(2), adversary::make_on_time_adversary());
  const auto result = sim.run();
  ASSERT_EQ(result.trace.messages.size(), 4u);
  for (const auto& m : result.trace.messages) {
    EXPECT_TRUE(m.received());
    EXPECT_GE(m.receiver_clock, 1);
    EXPECT_GE(m.recv_event, m.sent_event);
  }
}

// --- lateness ---------------------------------------------------------------

TEST(OnTime, Delay1RoundRobinIsOnTime) {
  Simulator sim({.seed = 1}, echo_fleet(4), adversary::make_on_time_adversary());
  const auto result = sim.run();
  EXPECT_TRUE(is_on_time(result.trace, /*k=*/1));
  EXPECT_EQ(late_message_count(result.trace, 1), 0);
}

TEST(OnTime, StretchedDelaysAreLateForSmallK) {
  Simulator sim({.seed = 1, .max_events = 5000}, echo_fleet(4),
                adversary::make_random_adversary(3, /*max_delay=*/8));
  const auto result = sim.run();
  // With delays up to 8 recipient steps, some message must be late for K=1...
  EXPECT_GT(late_message_count(result.trace, 1), 0);
  // ...but nothing can be late for a huge K.
  EXPECT_EQ(late_message_count(result.trace, 1000), 0);
}

TEST(OnTime, ClassifyReportsMaxStepsBetween) {
  Simulator sim({.seed = 2}, echo_fleet(3), adversary::make_on_time_adversary());
  const auto result = sim.run();
  for (const auto& timing : classify_messages(result.trace, 1)) {
    if (timing.received) {
      EXPECT_GE(timing.max_steps_between, 0);
      EXPECT_LE(timing.max_steps_between, 1);
    }
  }
}

// --- asynchronous rounds ------------------------------------------------------

/// Builds a hand-crafted trace: n processors in lockstep cycles, each message
/// delivered exactly `delay` cycles after send.
Trace lockstep_trace(int n, int cycles, int delay_cycles) {
  Trace trace;
  trace.n = n;
  trace.crashed.assign(static_cast<size_t>(n), false);
  trace.decide_clock.assign(static_cast<size_t>(n), std::nullopt);
  trace.decide_event.assign(static_cast<size_t>(n), std::nullopt);
  EventIndex event = 0;
  MsgId next_msg = 0;
  // Every processor broadcasts at every step; receipt after delay_cycles.
  for (int c = 0; c < cycles; ++c) {
    for (int p = 0; p < n; ++p) {
      TraceEvent ev;
      ev.index = event;
      ev.proc = p;
      ev.clock_after = c + 1;
      for (int to = 0; to < n; ++to) {
        TraceMessage m;
        m.id = next_msg++;
        m.from = p;
        m.to = to;
        m.sent_event = event;
        m.sender_clock = c + 1;
        const int recv_cycle = c + delay_cycles;
        if (recv_cycle < cycles) {
          m.recv_event = static_cast<EventIndex>(recv_cycle) * n + to;
          m.receiver_clock = recv_cycle + 1;
        }
        trace.messages.push_back(m);
        ev.sent.push_back(m.id);
      }
      trace.events.push_back(ev);
      ++event;
    }
  }
  return trace;
}

TEST(Rounds, SynchronousLockstepMatchesStandardRounds) {
  // "if processors are synchronized, send messages only at the beginning of a
  // round, and all message delays are exactly K, then this definition is the
  // same as the standard synchronous round definition" — with delay = K = 1
  // and continuous broadcasting, round r ends at clock r * K + (r-1)-ish
  // growth; here we verify rounds advance by exactly K when ends are driven
  // by receipt times.
  const Tick k = 3;
  Trace trace = lockstep_trace(/*n=*/3, /*cycles=*/40, /*delay_cycles=*/1);
  RoundAnalyzer rounds(trace, k);
  for (ProcId p = 0; p < 3; ++p) {
    EXPECT_EQ(rounds.round_end(p, 1), k);
    // Round 2 ends K after receipt of the last round-1 message (sent at clock
    // <= K, received at clock <= K+1): end = K + 1 + K.
    EXPECT_EQ(rounds.round_end(p, 2), 2 * k + 1);
  }
}

TEST(Rounds, NoMessagesMeansKTicksPerRound) {
  // "The reason we require a round to last at least K clock ticks is to
  // prevent a round from collapsing to nothing if no messages are sent."
  Trace trace;
  trace.n = 2;
  trace.crashed = {false, false};
  trace.decide_clock = {std::nullopt, std::nullopt};
  trace.decide_event = {std::nullopt, std::nullopt};
  for (int c = 0; c < 20; ++c) {
    for (int p = 0; p < 2; ++p) {
      TraceEvent ev;
      ev.index = static_cast<EventIndex>(c) * 2 + p;
      ev.proc = p;
      ev.clock_after = c + 1;
      trace.events.push_back(ev);
    }
  }
  const Tick k = 4;
  RoundAnalyzer rounds(trace, k);
  EXPECT_EQ(rounds.round_end(0, 1), 4);
  EXPECT_EQ(rounds.round_end(0, 2), 8);
  EXPECT_EQ(rounds.round_end(0, 5), 20);
  EXPECT_EQ(rounds.round_at(0, 1), 1);
  EXPECT_EQ(rounds.round_at(0, 4), 1);
  EXPECT_EQ(rounds.round_at(0, 5), 2);
}

TEST(Rounds, SlowMessagesStretchRounds) {
  const Tick k = 2;
  // Delay of 5 cycles: a round-1 message (sent at clock <= 2) arrives at
  // clock <= 7, so round 2 ends at 7 + k = 9 rather than 2k = 4.
  Trace trace = lockstep_trace(/*n=*/2, /*cycles=*/60, /*delay_cycles=*/5);
  RoundAnalyzer rounds(trace, k);
  EXPECT_EQ(rounds.round_end(0, 1), 2);
  EXPECT_EQ(rounds.round_end(0, 2), 2 + 5 + 2);
}

TEST(Rounds, CrashedSendersDoNotExtendRounds) {
  const Tick k = 2;
  Trace trace = lockstep_trace(/*n=*/2, /*cycles=*/60, /*delay_cycles=*/5);
  trace.crashed[1] = true;  // post-hoc: treat 1 as faulty
  RoundAnalyzer rounds(trace, k);
  // Processor 0's rounds are stretched only by its own (nonfaulty) messages
  // to itself; those still take 5 cycles here, so the stretch remains. But
  // processor 1's messages are excluded: identical ends in this symmetric
  // trace, so instead check that analysis doesn't throw and is monotone.
  EXPECT_GT(rounds.round_end(0, 3), rounds.round_end(0, 2));
}

TEST(Rounds, DecisionRoundReportsRoundOfDecideClock) {
  Trace trace = lockstep_trace(/*n=*/2, /*cycles=*/40, /*delay_cycles=*/1);
  trace.decide_clock[0] = 5;
  trace.decide_clock[1] = 9;
  const Tick k = 3;
  RoundAnalyzer rounds(trace, k);
  const auto r0 = rounds.decision_round(0);
  const auto r1 = rounds.decision_round(1);
  ASSERT_TRUE(r0.has_value());
  ASSERT_TRUE(r1.has_value());
  EXPECT_LE(*r0, *r1);
  const auto max_round = rounds.max_decision_round();
  ASSERT_TRUE(max_round.has_value());
  EXPECT_EQ(*max_round, *r1);
}

TEST(Rounds, UndecidedProcessorHasNoDecisionRound) {
  Trace trace = lockstep_trace(/*n=*/2, /*cycles=*/10, /*delay_cycles=*/1);
  RoundAnalyzer rounds(trace, 1);
  EXPECT_FALSE(rounds.decision_round(0).has_value());
  EXPECT_FALSE(rounds.max_decision_round().has_value());
}

}  // namespace
}  // namespace rcommit::sim
