// Determinism equivalence between the rebuilt per-event hot path and the
// preserved legacy loop (SimConfig::legacy_hot_path), plus unit coverage of
// the two data structures the rebuild introduced: the flat InFlightTable and
// the recycling PayloadPool. The equivalence suite is the license for every
// optimization in simulator.cpp — a run is a pure function of (adversary,
// initial configuration, seeds), so the two loops and both allocation
// strategies must produce byte-identical traces, decisions, and message ids.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "common/check.h"
#include "common/payload_pool.h"
#include "protocol/commit.h"
#include "sim/in_flight.h"
#include "sim/message.h"
#include "sim/simulator.h"
#include "sim/tracedump.h"

namespace rcommit {
namespace {

// ---------------------------------------------------------------------------
// Hot-path vs legacy equivalence.
// ---------------------------------------------------------------------------

struct RunVariant {
  bool legacy = false;
  bool pool = false;
  bool record_trace = true;
};

/// One commit-fleet run under the random adversary with random crashes.
sim::RunResult run_commit(uint64_t seed, int32_t n, const RunVariant& v) {
  const SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  std::vector<int> votes(static_cast<size_t>(n), 1);
  if (n > 2) votes[2] = 0;  // mixed votes: exercise the abort machinery too
  auto inner = adversary::make_random_adversary(seed, 3);
  auto plans = adversary::random_crash_plans(seed + 1, n, /*count=*/1,
                                             /*max_clock=*/6);
  auto adversary = std::make_unique<adversary::CrashAdversary>(std::move(inner),
                                                               std::move(plans));
  sim::Simulator sim({.seed = seed,
                      .record_trace = v.record_trace,
                      .pool_payloads = v.pool,
                      .legacy_hot_path = v.legacy},
                     protocol::make_commit_fleet(params, votes),
                     std::move(adversary));
  return sim.run();
}

/// Asserts that everything observable about two runs matches; when both
/// recorded traces, the rendered dumps must be byte-identical (covering
/// event order, message ids, clocks, and the per-message ledger).
void expect_equivalent(const sim::RunResult& a, const sim::RunResult& b,
                       bool compare_traces, const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.crashed, b.crashed);
  EXPECT_EQ(a.decide_clock, b.decide_clock);
  EXPECT_EQ(a.decide_event, b.decide_event);
  if (compare_traces) {
    EXPECT_EQ(sim::trace_to_string(a.trace), sim::trace_to_string(b.trace));
  }
}

TEST(HotPathEquivalence, LegacyAndCurrentProduceByteIdenticalRuns) {
  for (const int32_t n : {3, 5, 7}) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      const auto legacy = run_commit(seed, n, {.legacy = true});
      const auto current = run_commit(seed, n, {.legacy = false});
      expect_equivalent(legacy, current, /*compare_traces=*/true,
                        "n=" + std::to_string(n) + " seed=" + std::to_string(seed));
    }
  }
}

TEST(HotPathEquivalence, PooledPayloadsDoNotChangeRuns) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const auto heap = run_commit(seed, 5, {.legacy = false, .pool = false});
    const auto pooled = run_commit(seed, 5, {.legacy = false, .pool = true});
    expect_equivalent(heap, pooled, /*compare_traces=*/true,
                      "seed=" + std::to_string(seed));
  }
}

TEST(HotPathEquivalence, TraceFreeRunsMatchTracedDecisions) {
  // The swarm's fast path (record_trace off) must decide exactly as the
  // traced run does, on both loops.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const auto traced = run_commit(seed, 5, {.legacy = false, .record_trace = true});
    const auto fast = run_commit(seed, 5, {.legacy = false, .record_trace = false});
    const auto fast_legacy =
        run_commit(seed, 5, {.legacy = true, .record_trace = false});
    expect_equivalent(traced, fast, /*compare_traces=*/false,
                      "fast seed=" + std::to_string(seed));
    expect_equivalent(traced, fast_legacy, /*compare_traces=*/false,
                      "fast_legacy seed=" + std::to_string(seed));
  }
}

// ---------------------------------------------------------------------------
// InFlightTable.
// ---------------------------------------------------------------------------

sim::Envelope make_envelope(MsgId id, ProcId to = 0) {
  sim::Envelope env;
  env.id = id;
  env.from = 0;
  env.to = to;
  env.sent_at_event = id;
  env.sender_clock = 1;
  return env;
}

TEST(InFlightTable, InsertFindTakeRoundTrip) {
  sim::InFlightTable table(/*initial_capacity=*/8);
  table.insert(make_envelope(3, /*to=*/2), /*buffer_pos=*/5);
  ASSERT_NE(table.find(3), nullptr);
  EXPECT_EQ(table.find(3)->to, 2);
  EXPECT_EQ(table.buffer_pos(3), 5u);
  EXPECT_EQ(table.size(), 1u);

  const auto env = table.take(3);
  EXPECT_EQ(env.id, 3);
  EXPECT_EQ(table.find(3), nullptr);
  EXPECT_EQ(table.size(), 0u);
}

TEST(InFlightTable, SlotIsReusedAfterTake) {
  // Ids 0 and 8 share a residue at capacity 8; once 0 is delivered its slot
  // serves 8 with no growth — the steady-state sliding-window guarantee.
  sim::InFlightTable table(/*initial_capacity=*/8);
  table.insert(make_envelope(0), 0);
  (void)table.take(0);
  table.insert(make_envelope(8), 1);
  EXPECT_EQ(table.capacity(), 8u);
  ASSERT_NE(table.find(8), nullptr);
  EXPECT_EQ(table.buffer_pos(8), 1u);
}

TEST(InFlightTable, GrowsWhenLiveIdsCollide) {
  sim::InFlightTable table(/*initial_capacity=*/8);
  table.insert(make_envelope(0), 0);
  table.insert(make_envelope(8), 1);  // live collision: capacity must double
  EXPECT_GE(table.capacity(), 16u);
  ASSERT_NE(table.find(0), nullptr);
  ASSERT_NE(table.find(8), nullptr);
  // Survivors keep their buffer positions across the re-place.
  EXPECT_EQ(table.buffer_pos(0), 0u);
  EXPECT_EQ(table.buffer_pos(8), 1u);
}

TEST(InFlightTable, SetBufferPosRepointsALiveId) {
  sim::InFlightTable table(/*initial_capacity=*/8);
  table.insert(make_envelope(1), 4);
  table.set_buffer_pos(1, 2);
  EXPECT_EQ(table.buffer_pos(1), 2u);
}

TEST(InFlightTable, TakeAtReturnsEnvelopeAndPositionInOneLookup) {
  sim::InFlightTable table(/*initial_capacity=*/8);
  table.insert(make_envelope(5, /*to=*/1), 7);
  size_t pos = 0;
  const auto env = table.take_at(5, &pos);
  EXPECT_EQ(env.id, 5);
  EXPECT_EQ(env.to, 1);
  EXPECT_EQ(pos, 7u);
  EXPECT_EQ(table.find(5), nullptr);
}

TEST(InFlightTable, DeadIdLookupsFailTheCheck) {
  sim::InFlightTable table(/*initial_capacity=*/8);
  size_t pos = 0;
  EXPECT_THROW((void)table.take(42), CheckFailure);
  EXPECT_THROW((void)table.take_at(42, &pos), CheckFailure);
  EXPECT_THROW((void)table.buffer_pos(42), CheckFailure);
  EXPECT_EQ(table.find(42), nullptr);  // find is the non-throwing probe
}

// ---------------------------------------------------------------------------
// PayloadPool.
// ---------------------------------------------------------------------------

TEST(PayloadPool, RecyclesFreedBlocks) {
  PayloadPool pool;
  void* first = pool.allocate(64, 8);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(pool.deallocate(first));
  void* second = pool.allocate(64, 8);
  EXPECT_EQ(second, first);  // LIFO free list hands the same block back
  EXPECT_EQ(pool.stats().pool_allocs, 2);
  EXPECT_EQ(pool.stats().pool_frees, 1);
  EXPECT_TRUE(pool.deallocate(second));
}

TEST(PayloadPool, OversizeAndOveralignedRequestsFallBack) {
  PayloadPool pool;
  EXPECT_EQ(pool.allocate(pool.config().block_size + 1, 8), nullptr);
  EXPECT_EQ(pool.allocate(64, 32), nullptr);
  EXPECT_EQ(pool.stats().fallback_allocs, 2);
  // Foreign pointers are refused so the caller frees them itself.
  int x = 0;
  EXPECT_FALSE(pool.deallocate(&x));
}

TEST(PayloadPool, MaxBlocksCapsGrowthThenFallsBack) {
  PayloadPool pool({.block_size = 64, .blocks_per_chunk = 2, .max_blocks = 4});
  std::vector<void*> blocks;
  for (int i = 0; i < 4; ++i) {
    void* p = pool.allocate(32, 8);
    ASSERT_NE(p, nullptr) << "block " << i;
    blocks.push_back(p);
  }
  EXPECT_EQ(pool.allocate(32, 8), nullptr);  // cap reached
  EXPECT_EQ(pool.stats().fallback_allocs, 1);
  EXPECT_EQ(pool.stats().blocks_total, 4u);
  for (void* p : blocks) EXPECT_TRUE(pool.deallocate(p));
  // Returned blocks are served again without growing past the cap.
  EXPECT_NE(pool.allocate(32, 8), nullptr);
  EXPECT_EQ(pool.stats().blocks_total, 4u);
}

struct PoolMsg final : sim::MessageBase {
  explicit PoolMsg(int v) : value(v) {}
  int value;
  [[nodiscard]] std::string debug_string() const override { return "pool"; }
};

TEST(PayloadPool, ScopeRoutesMakeMessageThroughThePool) {
  auto pool = std::make_shared<PayloadPool>();
  {
    PayloadPoolScope scope(pool);
    auto msg = sim::make_message<PoolMsg>(7);
    EXPECT_EQ(pool->stats().pool_allocs, 1);
    msg.reset();
    EXPECT_EQ(pool->stats().pool_frees, 1);
  }
  // Outside the scope make_message goes back to the global allocator.
  auto msg = sim::make_message<PoolMsg>(8);
  EXPECT_EQ(pool->stats().pool_allocs, 1);
}

TEST(PayloadPool, PayloadMayOutliveScopeAndPoolHandle) {
  // The control block's allocator keeps the pool state alive, so a payload
  // held past both the scope and the caller's pool reference frees safely.
  sim::MessageRef survivor;
  {
    auto pool = std::make_shared<PayloadPool>();
    PayloadPoolScope scope(pool);
    survivor = sim::make_message<PoolMsg>(9);
  }
  ASSERT_NE(sim::msg_cast<PoolMsg>(survivor), nullptr);
  EXPECT_EQ(sim::msg_cast<PoolMsg>(survivor)->value, 9);
  survivor.reset();  // returns the block to a pool no one else references
}

}  // namespace
}  // namespace rcommit
