// Tests for the BFT commit baseline and the Byzantine fault-injection
// wrapper: commit/abort on honest runs, timer-driven view change past a dead
// primary, honest-side safety with live traitors, and determinism of the
// seed-derived tampering.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/basic.h"
#include "adversary/byzantine.h"
#include "adversary/crash.h"
#include "baselines/bftcommit.h"
#include "protocol/invariants.h"
#include "sim/simulator.h"

namespace rcommit::baselines {
namespace {

using sim::RunStatus;
using sim::Simulator;

std::vector<std::unique_ptr<sim::Process>> bft_fleet(const std::vector<int>& votes,
                                                     Tick timeout = 0) {
  const auto n = static_cast<int32_t>(votes.size());
  const SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int vote : votes) {
    BftCommitProcess::Options options;
    options.params = params;
    options.initial_vote = vote;
    options.timeout = timeout;
    fleet.push_back(std::make_unique<BftCommitProcess>(options));
  }
  return fleet;
}

TEST(BftCommit, AllYesCommits) {
  Simulator sim({.seed = 1}, bft_fleet({1, 1, 1, 1}),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kCommit);
}

TEST(BftCommit, OneNoAborts) {
  Simulator sim({.seed = 2}, bft_fleet({1, 0, 1, 1}),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kAbort);
}

TEST(BftCommit, MaxFaultyFollowsTheResilienceBound) {
  EXPECT_EQ(BftCommitProcess::max_faulty(4), 1);
  EXPECT_EQ(BftCommitProcess::max_faulty(7), 2);
  EXPECT_EQ(BftCommitProcess::max_faulty(10), 3);
  EXPECT_EQ(BftCommitProcess::max_faulty(3), 0);
}

TEST(BftCommit, PrimaryCrashRotatesTheView) {
  // The view-0 primary dies before proposing; the local timers rotate every
  // replica to view 1, whose primary proposes from its vote evidence, and
  // the 2f+1 survivors (n=4, f=1) finish without the primary.
  adversary::CrashPlan plan{.victim = 0, .at_clock = 1,
                            .suppress_sends_to = {1, 2, 3}};
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::vector<adversary::CrashPlan>{plan});
  Simulator sim({.seed = 3, .max_events = 50'000}, bft_fleet({1, 1, 1, 1}),
                std::move(adv));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_FALSE(result.has_conflicting_decisions());
  for (ProcId p = 1; p < 4; ++p) {
    EXPECT_TRUE(result.decisions[static_cast<size_t>(p)].has_value()) << "proc " << p;
  }
}

TEST(BftCommit, TraitorNeverSplitsHonestDecisions) {
  // One seed-derived Byzantine traitor (equivocation, stale replay, vote
  // corruption) against n=7, f=2 worth of slack: whatever it emits, the
  // honest six must stay unanimous and must never commit over an honest No
  // vote. Sweeps traitor identity and tamper seed.
  for (uint64_t seed = 0; seed < 30; ++seed) {
    std::vector<int> votes(7);
    RandomTape vote_tape(500 + seed);
    for (auto& v : votes) v = vote_tape.flip();
    auto fleet = bft_fleet(votes);
    const auto victim = static_cast<ProcId>(seed % 7);
    adversary::ByzantinePlan plan{.victim = victim, .from_clock = 1,
                                  .seed = 1000 + seed};
    adversary::wrap_byzantine(fleet, {plan});
    Simulator sim({.seed = 700 + seed, .max_events = 100'000}, std::move(fleet),
                  adversary::make_random_adversary(700 + seed, /*max_delay=*/4));
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided) << "seed " << seed;

    std::vector<bool> honest(7, true);
    honest[static_cast<size_t>(victim)] = false;
    EXPECT_TRUE(protocol::agreement_holds_among(result, honest)) << "seed " << seed;
    EXPECT_TRUE(protocol::abort_validity_holds_among(result, votes, honest))
        << "seed " << seed;
  }
}

TEST(Byzantine, PlansAreSeedDeterministic) {
  const auto a = adversary::random_byzantine_plans(9, /*n=*/10, /*count=*/3,
                                                   /*max_start_clock=*/16);
  const auto b = adversary::random_byzantine_plans(9, 10, 3, 16);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].victim, b[i].victim);
    EXPECT_EQ(a[i].from_clock, b[i].from_clock);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
  // Victims are distinct (wrap_byzantine requires it).
  EXPECT_NE(a[0].victim, a[1].victim);
  EXPECT_NE(a[1].victim, a[2].victim);
  EXPECT_NE(a[0].victim, a[2].victim);
  // A different master seed reshuffles the plans.
  const auto c = adversary::random_byzantine_plans(10, 10, 3, 16);
  EXPECT_TRUE(c[0].victim != a[0].victim || c[0].from_clock != a[0].from_clock ||
              c[0].seed != a[0].seed);
}

TEST(Byzantine, SameSeedSameTamperedRun) {
  // The whole Byzantine construction — schedule, tamper tape, equivocation
  // pattern — is a pure function of the seeds: two identical setups produce
  // byte-identical outcomes.
  const auto run_once = [] {
    auto fleet = bft_fleet({1, 1, 0, 1, 1, 1, 1});
    adversary::wrap_byzantine(
        fleet, adversary::random_byzantine_plans(11, 7, /*count=*/2,
                                                 /*max_start_clock=*/8));
    Simulator sim({.seed = 1234, .max_events = 100'000}, std::move(fleet),
                  adversary::make_random_adversary(1234, /*max_delay=*/3));
    return sim.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t p = 0; p < a.decisions.size(); ++p) {
    EXPECT_EQ(a.decisions[p], b.decisions[p]) << "proc " << p;
  }
}

TEST(Byzantine, TamperingActuallyChangesTheRun) {
  // Sanity check that the wrapper is not a no-op: across a seed sweep, at
  // least one tampered run must differ from its honest twin (otherwise the
  // whole Byzantine axis tests nothing).
  int differing = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const auto run = [&](bool tampered) {
      auto fleet = bft_fleet({1, 1, 1, 1, 1, 1, 1});
      if (tampered) {
        adversary::ByzantinePlan plan{.victim = 2, .from_clock = 1,
                                      .seed = 40 + seed};
        adversary::wrap_byzantine(fleet, {plan});
      }
      Simulator sim({.seed = 50 + seed, .max_events = 100'000}, std::move(fleet),
                    adversary::make_random_adversary(50 + seed, /*max_delay=*/3));
      return sim.run();
    };
    const auto honest = run(false);
    const auto byz = run(true);
    if (honest.messages_sent != byz.messages_sent || honest.events != byz.events) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

}  // namespace
}  // namespace rcommit::baselines
