// Robustness fuzzing of the wire layer: arbitrary bytes must either decode
// to a valid payload or throw CodecError — never crash, hang, or recurse
// unboundedly. Network input is untrusted.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "protocol/messages.h"
#include "transport/wire.h"

namespace rcommit::transport {
namespace {

TEST(WireFuzz, RandomBytesNeverCrashTheDecoder) {
  RandomTape rng(0xdec0de);
  constexpr int kCases = 3000;
  int decoded = 0;
  int rejected = 0;
  for (int i = 0; i < kCases; ++i) {
    std::vector<uint8_t> bytes(rng.next_below(64));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.next_below(256));
    try {
      auto msg = WireRegistry::instance().decode(bytes);
      ASSERT_NE(msg, nullptr);
      (void)msg->debug_string();  // decoded payloads must be usable
      ++decoded;
    } catch (const CodecError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(decoded + rejected, kCases);
  EXPECT_GT(rejected, 0) << "random bytes should mostly be garbage";
}

TEST(WireFuzz, MutatedValidFramesNeverCrash) {
  // Start from a real frame and flip bytes one at a time.
  const auto msg = sim::make_message<protocol::PiggybackedMsg>(
      std::vector<uint8_t>{1, 0, 1, 1},
      sim::make_message<protocol::AgreementR2>(5, 1));
  const auto pristine = WireRegistry::instance().encode(*msg);
  int rejected = 0;
  for (size_t pos = 0; pos < pristine.size(); ++pos) {
    for (uint8_t flip : {0x01, 0x80, 0xff}) {
      auto bytes = pristine;
      bytes[pos] ^= flip;
      try {
        (void)WireRegistry::instance().decode(bytes);
      } catch (const CodecError&) {
        ++rejected;
      }
    }
  }
  SUCCEED() << rejected << " mutations rejected cleanly";
}

TEST(WireFuzz, DeeplyNestedPiggybackIsRejectedNotOverflowed) {
  // Hand-craft a frame nesting the piggyback wrapper far past the depth cap:
  // tag=6 (piggyback), empty coins, repeated. The decoder must throw, not
  // recurse the stack away.
  BufWriter w;
  constexpr int kDepth = 10'000;
  for (int i = 0; i < kDepth; ++i) {
    w.u16(6);     // kPiggybacked
    w.varint(0);  // empty coin list
  }
  w.u16(4);  // innermost: GO
  EXPECT_THROW((void)WireRegistry::instance().decode(w.data()), CodecError);
}

TEST(WireFuzz, LegalNestingWithinDepthStillWorks) {
  sim::MessageRef msg = sim::make_message<protocol::GoMsg>();
  for (int i = 0; i < 4; ++i) {
    msg = sim::make_message<protocol::PiggybackedMsg>(std::vector<uint8_t>{1}, msg);
  }
  const auto decoded =
      WireRegistry::instance().decode(WireRegistry::instance().encode(*msg));
  EXPECT_NE(sim::msg_cast<protocol::PiggybackedMsg>(decoded), nullptr);
}

TEST(WireFuzz, TruncationsOfValidFrameAllThrow) {
  const auto msg = sim::make_message<protocol::AgreementR1>(3, 1);
  const auto pristine = WireRegistry::instance().encode(*msg);
  for (size_t len = 0; len < pristine.size(); ++len) {
    std::vector<uint8_t> bytes(pristine.begin(),
                               pristine.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_THROW((void)WireRegistry::instance().decode(bytes), CodecError)
        << "prefix of length " << len;
  }
}

}  // namespace
}  // namespace rcommit::transport
