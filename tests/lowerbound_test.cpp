// Executable versions of the paper's lower-bound scenarios.
//
// The proofs of Theorem 14 (n <= 2t is impossible) and Theorem 17 (no
// bounded expected clock ticks) construct specific adversarial schedules.
// These tests run our protocol inside those constructions and verify it
// responds the only way a correct protocol can: by refusing to decide (never
// by deciding wrongly), and by taking unboundedly many ticks while staying
// within constant asynchronous rounds.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "adversary/partition.h"
#include "adversary/stretch.h"
#include "metrics/counters.h"
#include "protocol/commit.h"
#include "protocol/invariants.h"
#include "sim/simulator.h"

namespace rcommit::protocol {
namespace {

using sim::RunStatus;
using sim::Simulator;

// --- Theorem 14: n <= 2t -------------------------------------------------------

TEST(Theorem14, HalfAndHalfPartitionPreventsDecisionWithoutError) {
  // The proof partitions the processors into halves A and B and starves the
  // intergroup links. With n = 2t the protocol would have to decide inside
  // one half — which our protocol refuses to do: quorums need n - t > n/2.
  const SystemParams params{.n = 6, .t = 3, .k = 2};  // deliberately n = 2t
  auto adv = std::make_unique<adversary::PartitionAdversary>(
      std::vector<ProcId>{0, 1, 2}, adversary::PartitionAdversary::kNever);
  Simulator sim({.seed = 1, .max_events = 30'000},
                make_commit_fleet(params, {1, 1, 1, 1, 1, 1}), std::move(adv));
  const auto result = sim.run();
  EXPECT_NE(result.status, RunStatus::kAllDecided);
  EXPECT_TRUE(agreement_holds(result));
  for (const auto& d : result.decisions) EXPECT_FALSE(d.has_value());
}

TEST(Theorem14, EachHalfAloneCannotDecideEvenWithInternalTraffic) {
  // Strengthen the scenario: group A is completely crashed (modelling the proof's
  // kill(A, ...) construction); B = t survivors of n = 2t must block.
  const SystemParams params{.n = 6, .t = 3, .k = 2};
  std::vector<adversary::CrashPlan> plans;
  for (ProcId v = 0; v < 3; ++v) {
    plans.push_back({.victim = v, .at_clock = 3, .suppress_sends_to = {}});
  }
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::move(plans));
  Simulator sim({.seed = 2, .max_events = 30'000},
                make_commit_fleet(params, {1, 1, 1, 1, 1, 1}), std::move(adv));
  const auto result = sim.run();
  EXPECT_NE(result.status, RunStatus::kAllDecided);
  EXPECT_TRUE(agreement_holds(result));
}

TEST(Theorem14, MajorityCorrectSideOfTheBoundTerminates) {
  // Contrast: with n = 2t + 1 the same construction cannot block the larger
  // side — the protocol decides once the partition heals.
  const SystemParams params{.n = 7, .t = 3, .k = 2};
  auto adv = std::make_unique<adversary::PartitionAdversary>(
      std::vector<ProcId>{0, 1, 2}, /*heal_at_event=*/800);
  Simulator sim({.seed = 3}, make_commit_fleet(params, {1, 1, 1, 1, 1, 1, 1}),
                std::move(adv));
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_TRUE(agreement_holds(result));
}

// --- Theorem 17: no bounded expected clock ticks ----------------------------------

TEST(Theorem17, DecisionTicksScaleWithAdversarialDelay) {
  // The proof's adversary delivers messages with delay 2mB to push decision
  // time past any fixed bound B. Executable version: doubling the uniform
  // delay roughly doubles decision ticks, with no plateau.
  const SystemParams params{.n = 5, .t = 2, .k = 2};
  Tick previous_ticks = 0;
  for (Tick delay : {4, 8, 16, 32}) {
    Simulator sim({.seed = 4},
                  make_commit_fleet(params, {1, 1, 1, 1, 1}),
                  std::make_unique<adversary::DelayStretchAdversary>(delay));
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided);
    const auto m = metrics::measure_run(result, params.k);
    EXPECT_GT(m.max_decision_clock, previous_ticks)
        << "ticks must keep growing with the delay";
    previous_ticks = m.max_decision_clock;
  }
  // No bound B survives: at delay 32 we are far past the failure-free 8K.
  EXPECT_GT(previous_ticks, 8 * params.k);
}

TEST(Theorem17, AsynchronousRoundsStayConstantUnderTheSameAdversary) {
  // The measure the paper introduces instead is immune to the construction.
  const SystemParams params{.n = 5, .t = 2, .k = 2};
  for (Tick delay : {4, 16, 64}) {
    Simulator sim({.seed = 5},
                  make_commit_fleet(params, {1, 1, 1, 1, 1}),
                  std::make_unique<adversary::DelayStretchAdversary>(delay));
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided);
    const auto m = metrics::measure_run(result, params.k);
    EXPECT_LE(m.max_decision_round, 14)
        << "Theorem 10's constant must hold at delay " << delay;
  }
}

TEST(Theorem17, StretchedRunsAreNotOnTimeSoCommitValidityIsVacuous) {
  // Sanity: the stretched runs violate the on-time condition, so the abort
  // outcomes they produce do not contradict commit validity.
  const SystemParams params{.n = 5, .t = 2, .k = 2};
  Simulator sim({.seed = 6}, make_commit_fleet(params, {1, 1, 1, 1, 1}),
                std::make_unique<adversary::DelayStretchAdversary>(16));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_GT(metrics::measure_run(result, params.k).late_messages, 0);
  EXPECT_TRUE(commit_validity_holds(result, {1, 1, 1, 1, 1}, params.k));
}

}  // namespace
}  // namespace rcommit::protocol
