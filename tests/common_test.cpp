// Unit tests for the common toolkit: codec, CRC, RNG, stats, checks.
#include <gtest/gtest.h>

#include <limits>

#include "common/check.h"
#include "common/codec.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace rcommit {
namespace {

// --- check macros ------------------------------------------------------------

TEST(Check, PassesWhenTrue) { EXPECT_NO_THROW(RCOMMIT_CHECK(1 + 1 == 2)); }

TEST(Check, ThrowsCheckFailure) {
  EXPECT_THROW(RCOMMIT_CHECK(false), CheckFailure);
}

TEST(Check, MessageIncludesExpressionAndDetail) {
  try {
    RCOMMIT_CHECK_MSG(2 < 1, "detail " << 42);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("detail 42"), std::string::npos);
  }
}

// --- types -------------------------------------------------------------------

TEST(Types, DecisionBitRoundTrip) {
  EXPECT_EQ(decision_from_bit(0), Decision::kAbort);
  EXPECT_EQ(decision_from_bit(1), Decision::kCommit);
  EXPECT_EQ(bit_from_decision(Decision::kAbort), 0);
  EXPECT_EQ(bit_from_decision(Decision::kCommit), 1);
}

TEST(Types, DecisionToString) {
  EXPECT_STREQ(to_string(Decision::kCommit), "COMMIT");
  EXPECT_STREQ(to_string(Decision::kAbort), "ABORT");
}

TEST(Types, MajorityCorrectBoundary) {
  SystemParams params{.n = 5, .t = 2, .k = 1};
  EXPECT_TRUE(params.majority_correct());
  EXPECT_EQ(params.quorum(), 3);
  params.t = 3;  // n <= 2t: Theorem 14 territory
  EXPECT_FALSE(params.majority_correct());
  SystemParams even{.n = 4, .t = 2, .k = 1};
  EXPECT_FALSE(even.majority_correct());
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicGivenSeed) {
  RandomTape a(42);
  RandomTape b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.next_real(), b.next_real());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  RandomTape a(1);
  RandomTape b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_real() != b.next_real()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(Rng, RealsInUnitInterval) {
  RandomTape tape(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = tape.next_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, FlipIsBinaryAndRoughlyFair) {
  RandomTape tape(11);
  int ones = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    const int b = tape.flip();
    ASSERT_TRUE(b == 0 || b == 1);
    ones += b;
  }
  EXPECT_GT(ones, kTrials * 45 / 100);
  EXPECT_LT(ones, kTrials * 55 / 100);
}

TEST(Rng, FlipBitsLengthAndValues) {
  RandomTape tape(3);
  const auto bits = tape.flip_bits(64);
  ASSERT_EQ(bits.size(), 64u);
  for (auto b : bits) EXPECT_TRUE(b == 0 || b == 1);
}

TEST(Rng, FlipBitsZeroAndNegative) {
  RandomTape tape(3);
  EXPECT_TRUE(tape.flip_bits(0).empty());
  EXPECT_THROW(tape.flip_bits(-1), CheckFailure);
}

TEST(Rng, NextBelowRespectsBound) {
  RandomTape tape(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(tape.next_below(17), 17u);
  }
  EXPECT_EQ(tape.next_below(1), 0u);
  EXPECT_THROW(tape.next_below(0), CheckFailure);
}

TEST(Rng, DrawCountTracksConsumption) {
  RandomTape tape(9);
  EXPECT_EQ(tape.draws(), 0);
  tape.next_real();
  tape.flip();
  tape.next_below(10);
  EXPECT_EQ(tape.draws(), 3);
}

TEST(Rng, DeriveSeedsDeterministicAndDistinct) {
  const auto a = derive_seeds(99, 8);
  const auto b = derive_seeds(99, 8);
  ASSERT_EQ(a.size(), 8u);
  EXPECT_EQ(a, b);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) EXPECT_NE(a[i], a[j]);
  }
}

// --- codec -------------------------------------------------------------------

TEST(Codec, FixedWidthRoundTrip) {
  BufWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  BufReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, VarintRoundTripEdgeValues) {
  const uint64_t values[] = {0,       1,          127,        128,
                             16383,   16384,      (1ULL << 32),
                             std::numeric_limits<uint64_t>::max()};
  BufWriter w;
  for (auto v : values) w.varint(v);
  BufReader r(w.data());
  for (auto v : values) EXPECT_EQ(r.varint(), v);
}

TEST(Codec, SignedVarintRoundTrip) {
  const int64_t values[] = {0, -1, 1, -64, 63, -65, 64,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  BufWriter w;
  for (auto v : values) w.svarint(v);
  BufReader r(w.data());
  for (auto v : values) EXPECT_EQ(r.svarint(), v);
}

TEST(Codec, StringAndBytesRoundTrip) {
  BufWriter w;
  w.str("hello, commit");
  w.str("");
  const std::vector<uint8_t> blob = {0, 1, 2, 255, 128};
  w.bytes(blob);
  w.boolean(true);
  w.boolean(false);
  BufReader r(w.data());
  EXPECT_EQ(r.str(), "hello, commit");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
}

TEST(Codec, TruncatedBufferThrows) {
  BufWriter w;
  w.u32(12345);
  auto data = w.data();
  data.pop_back();
  BufReader r(data);
  EXPECT_THROW(r.u32(), CodecError);
}

TEST(Codec, TruncatedStringThrows) {
  BufWriter w;
  w.varint(100);  // claims 100 bytes follow
  w.u8('x');
  BufReader r(w.data());
  EXPECT_THROW(r.str(), CodecError);
}

TEST(Codec, MalformedVarintThrows) {
  // 11 continuation bytes exceed the 64-bit budget.
  std::vector<uint8_t> bad(11, 0x80);
  BufReader r(bad);
  EXPECT_THROW(r.varint(), CodecError);
}

TEST(Codec, Crc32cKnownVector) {
  // RFC 3720 test vector: CRC-32C of 32 zero bytes.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
  // And "123456789".
  const std::string digits = "123456789";
  std::vector<uint8_t> d(digits.begin(), digits.end());
  EXPECT_EQ(crc32c(d), 0xe3069283u);
}

TEST(Codec, CrcDetectsSingleBitFlip) {
  std::vector<uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8};
  const uint32_t before = crc32c(data);
  data[3] ^= 0x10;
  EXPECT_NE(crc32c(data), before);
}

// --- stats -------------------------------------------------------------------

TEST(Stats, RunningStatBasics) {
  RunningStat s;
  for (double x : {2.0, 4.0, 6.0, 8.0}) s.add(x);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_NEAR(s.variance(), 20.0 / 3.0, 1e-12);
}

TEST(Stats, RunningStatEmpty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Stats, PercentileValidatesRange) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(1.5), CheckFailure);
}

TEST(Stats, HistogramBucketsAndOverflow) {
  Histogram h(5);
  h.add(0);
  h.add(1.4);
  h.add(1.9);
  h.add(4);
  h.add(17);  // overflow -> top bucket
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 2);
  EXPECT_EQ(h.bucket(2), 0);
  EXPECT_EQ(h.bucket(4), 2);
}

TEST(Stats, HistogramPrintSkipsEmptyBuckets) {
  Histogram h(4);
  h.add(0);
  h.add(3);
  std::ostringstream os;
  h.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("   0 "), std::string::npos);
  EXPECT_NE(text.find("   3+"), std::string::npos);
  EXPECT_EQ(text.find("   1 "), std::string::npos);
  EXPECT_NE(text.find("#"), std::string::npos);
}

TEST(Stats, HistogramValidates) {
  EXPECT_THROW(Histogram h(0), CheckFailure);
  Histogram h(3);
  EXPECT_THROW(h.add(-1.0), CheckFailure);
  EXPECT_THROW((void)h.bucket(3), CheckFailure);
}

TEST(Stats, TableRejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only one"}), CheckFailure);
}

TEST(Stats, TablePrintsAllCells) {
  Table t({"col1", "col2"});
  t.row({"x", "y"}).row({"long-value", "z"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("col1"), std::string::npos);
  EXPECT_NE(out.find("long-value"), std::string::npos);
  EXPECT_NE(out.find("z"), std::string::npos);
}

}  // namespace
}  // namespace rcommit
