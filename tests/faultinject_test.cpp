// Tests for the deterministic fault-injection layer: plan derivation and
// round-tripping, the WAL injector (every kind fires exactly once under a
// targeted plan; the zero-fault plan is byte-identical to no instrumentation),
// the RPC decorator, and the fault-plan shrinking axis.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "db/kv.h"
#include "faultinject/netfault.h"
#include "faultinject/plan.h"
#include "faultinject/torture.h"
#include "swarm/shrink.h"

namespace rcommit::faultinject {
namespace {

namespace fs = std::filesystem;

class FaultInjectFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = fs::temp_directory_path() /
           ("rcommit_faultinject_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

std::vector<uint8_t> file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(FaultPlanTest, SerializeRoundTrips) {
  FaultPlan plan = FaultPlan::none();
  plan.add({3, FaultKind::kTornWrite, 12345});
  plan.add({7, FaultKind::kDuplicate, 0});
  plan.add({2, FaultKind::kRpcDelay, 4});
  const FaultPlan back = FaultPlan::deserialize(plan.serialize());
  EXPECT_EQ(back, plan);
  EXPECT_EQ(back.wal_action_at(3), (FaultAction{3, FaultKind::kTornWrite, 12345}));
  EXPECT_EQ(back.wal_action_at(4).kind, FaultKind::kNone);
  EXPECT_EQ(back.rpc_action_at(2).kind, FaultKind::kRpcDelay);
}

TEST(FaultPlanTest, FromSeedIsDeterministic) {
  const FaultPlanOptions options{.wal_horizon = 64, .rpc_horizon = 64,
                                 .wal_rate = 0.2, .rpc_rate = 0.2};
  EXPECT_EQ(FaultPlan::from_seed(42, options), FaultPlan::from_seed(42, options));
  EXPECT_NE(FaultPlan::from_seed(42, options), FaultPlan::from_seed(43, options));
  // Zero rates draw nothing.
  EXPECT_TRUE(FaultPlan::from_seed(42, {}).empty());
}

TEST(FaultPlanTest, KindNamesRoundTrip) {
  for (const FaultKind kind :
       {FaultKind::kCrashBefore, FaultKind::kTornWrite, FaultKind::kPartialFlush,
        FaultKind::kDuplicate, FaultKind::kCrashAfter, FaultKind::kRpcDrop,
        FaultKind::kRpcDuplicate, FaultKind::kRpcDelay, FaultKind::kRpcReorder}) {
    EXPECT_EQ(parse_fault_kind(to_string(kind)), kind);
  }
}

TEST_F(FaultInjectFixture, EveryWalKindFiresExactlyOnce) {
  // A targeted plan at site 2 fires its kind exactly once: sites 0 and 1 stay
  // clean, and for crash kinds nothing runs after the throw.
  for (const FaultKind kind :
       {FaultKind::kCrashBefore, FaultKind::kTornWrite, FaultKind::kPartialFlush,
        FaultKind::kDuplicate, FaultKind::kCrashAfter}) {
    const fs::path wal =
        dir_ / (std::string("wal-") + to_string(kind) + ".log");
    FaultInjector injector(FaultPlan::wal_fault_at(2, kind, 77));
    bool crashed = false;
    try {
      db::KvStore store(wal);
      store.set_fault_hook(&injector);
      // Each prepare appends kBegin + kWrite + kPrepared = 3 sites, so site 2
      // is the first transaction's PREPARED record.
      ASSERT_TRUE(store.prepare(1, {{"a", "A"}}));
      ASSERT_TRUE(store.prepare(2, {{"b", "B"}}));
    } catch (const db::CrashInjected& crash) {
      crashed = true;
      EXPECT_EQ(crash.site(), 2) << to_string(kind);
    }
    EXPECT_EQ(crashed, is_crash_kind(kind)) << to_string(kind);
    EXPECT_EQ(injector.fired(kind), 1) << to_string(kind);
    ASSERT_GE(injector.sites().size(), 3u);
    EXPECT_EQ(injector.sites()[2].fired, kind);
    EXPECT_EQ(injector.sites()[0].fired, FaultKind::kNone);
    EXPECT_EQ(injector.sites()[1].fired, FaultKind::kNone);
  }
}

TEST_F(FaultInjectFixture, TornCommitRecordLeavesTxnInDoubt) {
  const fs::path wal = dir_ / "torn-commit.log";
  FaultInjector injector(FaultPlan::wal_fault_at(3, FaultKind::kTornWrite, 5));
  try {
    db::KvStore store(wal);
    store.set_fault_hook(&injector);
    ASSERT_TRUE(store.prepare(1, {{"a", "A"}}));
    store.commit(1);
    FAIL() << "commit should have crashed";
  } catch (const db::CrashInjected&) {
  }
  // Torn final frame: replay trusts the prepare but not the commit.
  db::KvStore recovered(wal);
  EXPECT_EQ(recovered.get("a"), std::nullopt);
  EXPECT_EQ(recovered.in_doubt(), std::vector<db::TxnId>{1});
}

TEST_F(FaultInjectFixture, CrashedPrepareReleasesItsLocks) {
  // Regression: a crash while appending the PREPARED record used to leave
  // the transaction's key locks held, so a caller that survived the
  // exception could never prepare those keys again. The PREPARED record was
  // never durable, so the store must behave as if the prepare never started.
  const fs::path wal = dir_ / "crashed-prepare.log";
  FaultInjector injector(
      FaultPlan::wal_fault_at(2, FaultKind::kCrashBefore, 0));
  db::KvStore store(wal);
  store.set_fault_hook(&injector);
  EXPECT_THROW(store.prepare(1, {{"a", "A"}}), db::CrashInjected);

  // Same key, new transaction: succeeds only if txn 1's locks were released.
  EXPECT_TRUE(store.prepare(2, {{"a", "A2"}}));

  // Recovery agrees: the half-appended txn 1 is an unprepared leftover and
  // is dropped; only txn 2 is in doubt.
  db::KvStore recovered(wal);
  EXPECT_EQ(recovered.get("a"), std::nullopt);
  EXPECT_EQ(recovered.in_doubt(), std::vector<db::TxnId>{2});
}

TEST_F(FaultInjectFixture, CrashedAbortCanBeRetried) {
  // Regression: abort() used to erase the staged entry before appending the
  // ABORT record, so a crash during the append made the retry a silent
  // no-op — memory said "gone" while the log still said prepared, and the
  // transaction came back in-doubt after recovery.
  const fs::path wal = dir_ / "crashed-abort.log";
  // Sites 0-2 are txn 1's BEGIN/WRITE/PREPARED; site 3 is the ABORT record.
  FaultInjector injector(
      FaultPlan::wal_fault_at(3, FaultKind::kCrashBefore, 0));
  db::KvStore store(wal);
  store.set_fault_hook(&injector);
  ASSERT_TRUE(store.prepare(1, {{"a", "A"}}));
  EXPECT_THROW(store.abort(1), db::CrashInjected);

  // The staged entry survived, so the retry appends the ABORT record (site
  // 4, clean) and the transaction resolves.
  store.abort(1);
  EXPECT_EQ(injector.sites_seen(), 5);

  // A third abort is a no-op — the entry is gone now, and no duplicate
  // ABORT record is appended.
  store.abort(1);
  EXPECT_EQ(injector.sites_seen(), 5);

  // After the retried abort the key is free and recovery sees a resolved
  // transaction, not an in-doubt one.
  EXPECT_TRUE(store.prepare(2, {{"a", "A2"}}));
  db::KvStore recovered(wal);
  EXPECT_EQ(recovered.get("a"), std::nullopt);
  EXPECT_EQ(recovered.in_doubt(), std::vector<db::TxnId>{2});
}

TEST_F(FaultInjectFixture, ZeroFaultPlanIsByteIdentical) {
  // Running under the empty plan must leave WALs byte-identical to an
  // uninstrumented run — instrumenting storage cannot perturb it.
  const auto run = [&](const fs::path& sub, db::WalFaultHook* hook) {
    fs::create_directories(dir_ / sub);
    db::KvStore store(dir_ / sub / "shard.wal");
    if (hook != nullptr) store.set_fault_hook(hook);
    EXPECT_TRUE(store.prepare(1, {{"a", "A"}, {"b", "B"}}, {0, 1}));
    store.commit(1);
    EXPECT_TRUE(store.prepare(2, {{"a", "A2"}}));
    store.abort(2);
    store.checkpoint();
    EXPECT_TRUE(store.prepare(3, {{"c", "C"}}));
  };
  FaultInjector injector(FaultPlan::none());
  run("plain", nullptr);
  run("hooked", &injector);
  EXPECT_GT(injector.sites_seen(), 0);
  EXPECT_EQ(file_bytes(dir_ / "plain" / "shard.wal"),
            file_bytes(dir_ / "hooked" / "shard.wal"));
}

/// Records every frame that reaches the wire, in order.
class CaptureNetwork final : public transport::Network {
 public:
  void start() override {}
  void stop() override {}
  void send(const transport::WireFrame& frame) override {
    sent.push_back(frame);
  }
  transport::Channel<std::vector<uint8_t>>& inbox(ProcId) override {
    return inbox_;
  }
  [[nodiscard]] int32_t n() const override { return 2; }

  std::vector<transport::WireFrame> sent;

 private:
  transport::Channel<std::vector<uint8_t>> inbox_;
};

transport::WireFrame make_frame(uint8_t tag) {
  transport::WireFrame frame;
  frame.from = 0;
  frame.to = 1;
  frame.payload = {tag};
  return frame;
}

TEST(FaultyNetworkTest, DropDuplicateDelayReorder) {
  CaptureNetwork capture;
  FaultPlan plan = FaultPlan::none();
  plan.add({1, FaultKind::kRpcDrop, 0});
  plan.add({2, FaultKind::kRpcDuplicate, 0});
  plan.add({4, FaultKind::kRpcReorder, 0});
  plan.add({6, FaultKind::kRpcDelay, 2});
  FaultyNetwork faulty(capture, plan);
  for (uint8_t tag = 0; tag < 9; ++tag) faulty.send(make_frame(tag));

  // site 0 clean; 1 dropped; 2 duplicated; 3 clean; 4 held until after 5;
  // 5 clean (releases 4); 6 held until after 8; 7, 8 clean (8 releases 6).
  std::vector<uint8_t> order;
  for (const auto& frame : capture.sent) order.push_back(frame.payload.at(0));
  EXPECT_EQ(order, (std::vector<uint8_t>{0, 2, 2, 3, 5, 4, 7, 8, 6}));
  EXPECT_EQ(faulty.sites_seen(), 9);
  EXPECT_EQ(faulty.dropped(), 1);
  EXPECT_EQ(faulty.duplicated(), 1);
  EXPECT_EQ(faulty.held(), 2);
  EXPECT_EQ(faulty.lost_on_stop(), 0);
}

TEST(FaultyNetworkTest, FrameHeldAtStopIsLost) {
  CaptureNetwork capture;
  FaultPlan plan = FaultPlan::rpc_fault_at(0, FaultKind::kRpcDelay, 100);
  FaultyNetwork faulty(capture, plan);
  faulty.send(make_frame(1));
  faulty.stop();
  EXPECT_TRUE(capture.sent.empty());
  EXPECT_EQ(faulty.lost_on_stop(), 1);
}

TEST(DdminKeepTest, ShrinksToViolatingPair) {
  // Violation requires indices 3 and 7 together; ddmin must find exactly that
  // pair from a 12-element schedule.
  int evals = 0;
  const auto violates = [](const std::vector<size_t>& keep) {
    bool has3 = false;
    bool has7 = false;
    for (const size_t index : keep) {
      has3 |= index == 3;
      has7 |= index == 7;
    }
    return has3 && has7;
  };
  const auto kept = swarm::ddmin_keep(12, violates, {}, &evals);
  EXPECT_EQ(kept, (std::vector<size_t>{3, 7}));
  EXPECT_GT(evals, 0);
}

TEST(DdminKeepTest, NonViolatingSetReturnsUnchanged) {
  const auto kept =
      swarm::ddmin_keep(5, [](const std::vector<size_t>&) { return false; });
  EXPECT_EQ(kept.size(), 5u);
}

TEST_F(FaultInjectFixture, ShrinkFaultPlanDropsIrrelevantActions) {
  // Pad a crash with harmless duplicate actions; shrinking against the
  // "did it crash" oracle must strip the padding and keep one crash action.
  TortureOptions options;
  options.scratch_dir = dir_ / "shrink";
  options.txns = 3;
  FaultPlan plan = FaultPlan::none();
  plan.add({1, FaultKind::kDuplicate, 0});
  plan.add({4, FaultKind::kDuplicate, 0});
  plan.add({6, FaultKind::kCrashAfter, 0});
  const auto all = plan.all_actions();
  const auto violates = [&](const std::vector<size_t>& keep) {
    std::vector<FaultAction> subset;
    for (const size_t index : keep) subset.push_back(all[index]);
    TortureOptions point = options;
    point.scratch_dir = dir_ / "shrink-eval";
    return run_crash_point(point, plan.with_actions(subset)).crashed;
  };
  const auto kept = swarm::ddmin_keep(all.size(), violates);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(all[kept[0]].kind, FaultKind::kCrashAfter);
}

}  // namespace
}  // namespace rcommit::faultinject
