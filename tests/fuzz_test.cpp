// Randomized schedule fuzzing.
//
// Thousands of short runs with randomly drawn system sizes, vote vectors,
// adversary parameters, and fault loads — each checked against the paper's
// correctness conditions. On a violation the test prints the recorded
// schedule (sim/replay.h) so the exact interleaving can be replayed under a
// debugger. The per-case iteration counts are sized for CI; crank kCases up
// for soak runs.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "common/rng.h"
#include "protocol/commit.h"
#include "protocol/invariants.h"
#include "sim/replay.h"
#include "sim/simulator.h"
#include "sim/tracedump.h"

namespace rcommit::protocol {
namespace {

struct FuzzCase {
  int32_t n;
  int32_t t;
  Tick k;
  std::vector<int> votes;
  int crashes;
  Tick max_delay;
  uint64_t seed;
};

FuzzCase draw_case(RandomTape& rng, uint64_t seed) {
  FuzzCase c;
  c.n = 3 + static_cast<int32_t>(rng.next_below(7));  // 3..9
  c.t = (c.n - 1) / 2;
  c.k = 1 + static_cast<Tick>(rng.next_below(4));
  c.votes.resize(static_cast<size_t>(c.n));
  for (auto& v : c.votes) v = rng.flip();
  c.crashes = static_cast<int>(rng.next_below(static_cast<uint64_t>(c.t + 1)));
  c.max_delay = 1 + static_cast<Tick>(rng.next_below(6));
  c.seed = seed;
  return c;
}

sim::RunResult run_case(const FuzzCase& c, sim::RecordedSchedule* schedule_out) {
  SystemParams params{.n = c.n, .t = c.t, .k = c.k};
  auto plans = adversary::random_crash_plans(c.seed + 7, c.n, c.crashes,
                                             /*max_clock=*/12 * c.k);
  for (auto& p : plans) {
    if (p.victim == 0 && p.at_clock == 1 && p.suppress_sends_to.empty()) {
      p.at_clock = 2;  // keep the GO alive (§2.4 exemption)
    }
  }
  auto recorder = std::make_unique<sim::RecordingAdversary>(
      std::make_unique<adversary::CrashAdversary>(
          adversary::make_random_adversary(c.seed + 1, c.max_delay),
          std::move(plans)));
  auto* recorder_ptr = recorder.get();
  sim::Simulator sim({.seed = c.seed, .max_events = 100'000},
                     make_commit_fleet(params, c.votes), std::move(recorder));
  auto result = sim.run();
  if (schedule_out != nullptr) *schedule_out = recorder_ptr->schedule();
  return result;
}

TEST(Fuzz, CommitConditionsAcrossRandomCases) {
  constexpr int kCases = 400;
  RandomTape meta_rng(0xf022);
  for (int i = 0; i < kCases; ++i) {
    const auto c = draw_case(meta_rng, static_cast<uint64_t>(i) * 2654435761u + 3);
    sim::RecordedSchedule schedule;
    const auto result = run_case(c, &schedule);

    const bool agreement = agreement_holds(result);
    const bool abort_ok = abort_validity_holds(result, c.votes);
    const bool commit_ok = commit_validity_holds(result, c.votes, c.k);
    const bool terminated_in_bound =
        c.crashes > c.t || result.status == sim::RunStatus::kAllDecided;

    if (!(agreement && abort_ok && commit_ok && terminated_in_bound)) {
      FAIL() << "fuzz case " << i << " (n=" << c.n << " t=" << c.t << " k=" << c.k
             << " crashes=" << c.crashes << " seed=" << c.seed << ") violated"
             << (agreement ? "" : " [agreement]")
             << (abort_ok ? "" : " [abort-validity]")
             << (commit_ok ? "" : " [commit-validity]")
             << (terminated_in_bound ? "" : " [termination]") << "\nschedule:\n"
             << schedule.serialize() << "\ntrace:\n"
             << sim::trace_to_string(result.trace,
                                     {.show_messages = false, .k = c.k});
    }
  }
}

TEST(Fuzz, MidBroadcastCrashStorm) {
  // Every crash is a partial broadcast — the hardest shape for quorum
  // bookkeeping. t crashes, all with random suppression sets.
  constexpr int kCases = 150;
  for (int i = 0; i < kCases; ++i) {
    const auto seed = static_cast<uint64_t>(i) * 48271 + 11;
    const SystemParams params{.n = 7, .t = 3, .k = 2};
    RandomTape rng(seed);
    std::vector<int> votes(7);
    for (auto& v : votes) v = rng.flip();

    std::vector<adversary::CrashPlan> plans;
    for (int crash = 0; crash < 3; ++crash) {
      adversary::CrashPlan plan;
      plan.victim = 1 + static_cast<ProcId>(rng.next_below(6));  // never p0
      plan.at_clock = 2 + static_cast<Tick>(rng.next_below(12));
      for (ProcId p = 0; p < 7; ++p) {
        if (rng.flip() == 1) plan.suppress_sends_to.push_back(p);
      }
      if (plan.suppress_sends_to.empty()) plan.suppress_sends_to.push_back(0);
      plans.push_back(std::move(plan));
    }
    // Distinct victims only (duplicate plans for the same victim: the first
    // to fire wins; the rest are unreachable — drop them for clarity).
    std::sort(plans.begin(), plans.end(),
              [](const auto& a, const auto& b) { return a.victim < b.victim; });
    plans.erase(std::unique(plans.begin(), plans.end(),
                            [](const auto& a, const auto& b) {
                              return a.victim == b.victim;
                            }),
                plans.end());

    auto adv = std::make_unique<adversary::CrashAdversary>(
        adversary::make_random_adversary(seed + 1, 3), std::move(plans));
    sim::Simulator sim({.seed = seed, .max_events = 100'000},
                       make_commit_fleet(params, votes), std::move(adv));
    const auto result = sim.run();
    ASSERT_EQ(result.status, sim::RunStatus::kAllDecided) << "seed " << seed;
    EXPECT_TRUE(agreement_holds(result)) << "seed " << seed;
    EXPECT_TRUE(abort_validity_holds(result, votes)) << "seed " << seed;
  }
}

TEST(Fuzz, DeterminismAcrossReruns) {
  // run(A, I, F) is a pure function (§2.3): identical seeds must give
  // identical traces, for every adversary family drawn.
  RandomTape meta_rng(77);
  for (int i = 0; i < 40; ++i) {
    const auto c = draw_case(meta_rng, static_cast<uint64_t>(i) * 7919 + 1);
    const auto a = run_case(c, nullptr);
    const auto b = run_case(c, nullptr);
    ASSERT_EQ(a.events, b.events) << "case " << i;
    ASSERT_EQ(a.messages_sent, b.messages_sent) << "case " << i;
    ASSERT_EQ(a.trace.events.size(), b.trace.events.size()) << "case " << i;
    for (size_t e = 0; e < a.trace.events.size(); ++e) {
      ASSERT_EQ(a.trace.events[e].proc, b.trace.events[e].proc);
      ASSERT_EQ(a.trace.events[e].delivered, b.trace.events[e].delivered);
      ASSERT_EQ(a.trace.events[e].sent, b.trace.events[e].sent);
    }
  }
}

}  // namespace
}  // namespace rcommit::protocol
