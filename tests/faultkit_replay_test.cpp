// Replays every committed crash-schedule artifact under tests/corpus_fault/
// and requires the freshly computed CrashPointResult to match the stored
// report field for field — the executable proof that a sweep failure is
// reproducible from its artifact alone (and that shrunk schedules replay to
// the same RecoveryReport across code changes).
//
// Regenerate an entry with:
//   faultkit --replay --site=N --kind=K --arg=A --save=tests/corpus_fault/<name>
#include <gtest/gtest.h>

#include <filesystem>

#include "faultinject/torture.h"

namespace rcommit::faultinject {
namespace {

namespace fs = std::filesystem;

TEST(FaultkitReplayTest, CorpusArtifactsReplayIdentically) {
  const fs::path corpus(RCOMMIT_FAULT_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(corpus)) << corpus;
  int replayed = 0;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (!entry.is_directory()) continue;
    SCOPED_TRACE(entry.path().filename().string());
    const FaultArtifact artifact = load_fault_artifact(entry.path());
    TortureOptions options = artifact.options;
    options.scratch_dir = fs::temp_directory_path() /
                          ("rcommit_faultkit_replay_" +
                           std::to_string(::getpid()) + "_" +
                           entry.path().filename().string());
    const CrashPointResult result = run_crash_point(options, artifact.plan);
    EXPECT_EQ(result, artifact.expected)
        << "expected:\n"
        << artifact.expected.serialize() << "got:\n"
        << result.serialize();
    EXPECT_EQ(result.report, artifact.expected.report);
    std::error_code ec;
    fs::remove_all(options.scratch_dir, ec);
    ++replayed;
  }
  EXPECT_GT(replayed, 0) << "empty corpus at " << corpus;
}

TEST(FaultkitReplayTest, ArtifactRoundTripsThroughDisk) {
  const fs::path dir = fs::temp_directory_path() /
                       ("rcommit_fault_artifact_" + std::to_string(::getpid()));
  TortureOptions options;
  options.seed = 21;
  FaultPlan plan = FaultPlan::wal_fault_at(4, FaultKind::kPartialFlush);
  plan.add({9, FaultKind::kDuplicate, 0});
  CrashPointResult expected;
  expected.crashed = true;
  expected.crash_site = 4;
  expected.sites_seen = 5;
  expected.digest = 0xdeadbeef;
  expected.errors = {"sample error"};
  write_fault_artifact(dir, {options, plan, expected});
  const FaultArtifact back = load_fault_artifact(dir);
  EXPECT_EQ(back.options.serialize(), options.serialize());
  EXPECT_EQ(back.plan, plan);
  EXPECT_EQ(back.expected, expected);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace rcommit::faultinject
