// Coverage-guided search (src/swarm/coverage.h): fingerprint stability and
// sensitivity, corpus bookkeeping, mutation admissibility, thread-count
// determinism of run_search, the corpus distill→replay round-trip, and the
// violation→shrink→artifact flow on the deliberately unsound kBroken
// protocol. A failure here means the search's coverage signal drifted — the
// fingerprints a committed corpus (tests/corpus_search) was distilled under
// no longer reproduce — or the search stopped honoring the swarm's
// counterexample pipeline.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "sim/replay.h"
#include "swarm/artifacts.h"
#include "swarm/coverage.h"
#include "swarm/matrix.h"
#include "swarm/runner.h"

namespace rcommit::swarm {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("rcommit_coverage_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

CellConfig crash_cell(uint64_t seed) {
  CellConfig cell;
  cell.protocol = ProtocolKind::kCommit;
  cell.adversary = AdversaryKind::kCrash;
  cell.n = 5;
  cell.t = 2;
  cell.k = 2;
  cell.seed = seed;
  return cell;
}

/// Runs one cell recording its schedule and result, and returns the
/// fingerprint plus the outcome for further inspection.
uint64_t fingerprint_of(const CellConfig& cell, CellOutcome* outcome_out = nullptr,
                        sim::RunResult* result_out = nullptr) {
  sim::BatchRunner runner;
  sim::RunResult result;
  const auto outcome = run_cell(
      cell, {.measure = false, .record_schedule = true, .result_out = &result},
      runner);
  RCOMMIT_CHECK_MSG(!outcome.violation, "unexpected violation: " << outcome.violation_detail);
  const auto fp = run_fingerprint(cell, result, outcome.schedule, outcome.stages);
  if (outcome_out != nullptr) *outcome_out = outcome;
  if (result_out != nullptr) *result_out = result;
  return fp;
}

// --- Fingerprint -----------------------------------------------------------

TEST(Fingerprint, StableAcrossRepeatedExecutions) {
  for (const uint64_t seed : {1u, 7u, 42u}) {
    const auto cell = crash_cell(seed);
    EXPECT_EQ(fingerprint_of(cell), fingerprint_of(cell)) << "seed " << seed;
  }
}

TEST(Fingerprint, IgnoresSeedAndAdversaryKind) {
  // Behavior twins must collide: the digest covers what the run *did*, not
  // which seed or adversary label produced it. Recompute the fingerprint of
  // one fixed run under configs that differ only in those fields.
  CellOutcome outcome;
  sim::RunResult result;
  const auto cell = crash_cell(3);
  const auto fp = fingerprint_of(cell, &outcome, &result);

  auto relabeled = cell;
  relabeled.seed = 999;
  relabeled.adversary = AdversaryKind::kLateMsg;
  EXPECT_EQ(fp, run_fingerprint(relabeled, result, outcome.schedule, outcome.stages));

  auto other_shape = cell;
  other_shape.n = 7;
  EXPECT_NE(fp, run_fingerprint(other_shape, result, outcome.schedule, outcome.stages));
}

TEST(Fingerprint, SeparatesDecisionPatterns) {
  const auto cell = crash_cell(1);
  const sim::RecordedSchedule empty_schedule;

  sim::RunResult base;
  base.status = sim::RunStatus::kAllDecided;
  base.events = 64;
  base.messages_sent = 40;
  base.decisions.assign(5, Decision::kCommit);
  base.crashed.assign(5, false);
  base.decide_clock.assign(5, Tick{8});

  auto flipped = base;
  flipped.decisions[2] = Decision::kAbort;

  auto crashed = base;
  crashed.crashed[2] = true;
  crashed.decisions[2].reset();
  crashed.decide_clock[2].reset();

  auto slower = base;
  slower.decide_clock[2] = Tick{200};  // different log2 bucket than 8

  const auto fp_base = run_fingerprint(cell, base, empty_schedule, 1);
  const auto fp_flipped = run_fingerprint(cell, flipped, empty_schedule, 1);
  const auto fp_crashed = run_fingerprint(cell, crashed, empty_schedule, 1);
  const auto fp_slower = run_fingerprint(cell, slower, empty_schedule, 1);
  const auto fp_stages = run_fingerprint(cell, base, empty_schedule, 2);

  const std::vector<uint64_t> all = {fp_base, fp_flipped, fp_crashed, fp_slower,
                                     fp_stages};
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i], all[j]) << "digests " << i << " and " << j << " collide";
    }
  }
}

TEST(Fingerprint, SeparatesCrashSites) {
  const auto cell = crash_cell(1);
  sim::RunResult result;
  result.status = sim::RunStatus::kAllDecided;
  result.events = 64;
  result.messages_sent = 40;
  result.decisions.assign(5, Decision::kCommit);
  result.crashed.assign(5, false);
  result.decide_clock.assign(5, Tick{8});

  sim::RecordedSchedule clean;
  clean.actions.resize(4);
  for (ProcId p = 0; p < 4; ++p) clean.actions[static_cast<size_t>(p)].proc = p;

  auto with_crash = clean;
  with_crash.actions[1].crash = true;
  auto mid_broadcast = with_crash;
  mid_broadcast.actions[1].suppress_sends_to = {0, 2};

  const auto fp_clean = run_fingerprint(cell, result, clean, 1);
  const auto fp_crash = run_fingerprint(cell, result, with_crash, 1);
  const auto fp_mid = run_fingerprint(cell, result, mid_broadcast, 1);
  EXPECT_NE(fp_clean, fp_crash);
  EXPECT_NE(fp_crash, fp_mid);
}

// --- Corpus ----------------------------------------------------------------

TEST(Corpus, DedupsCapsAndKeepsCounting) {
  Corpus corpus(/*max_entries=*/2);
  const auto cell = crash_cell(1);
  const sim::RecordedSchedule schedule;

  EXPECT_TRUE(corpus.add(30, cell, schedule));
  EXPECT_FALSE(corpus.add(30, cell, schedule));  // duplicate
  EXPECT_TRUE(corpus.add(10, cell, schedule));
  EXPECT_TRUE(corpus.add(20, cell, schedule));  // novel but over the cap

  EXPECT_EQ(corpus.entries().size(), 2u);
  EXPECT_EQ(corpus.novel_count(), 3u);  // the cap never loses novelty credit
  EXPECT_TRUE(corpus.contains(20));
  EXPECT_FALSE(corpus.contains(40));
  // seen() is sorted; entries() keeps discovery order.
  EXPECT_EQ(corpus.seen(), (std::vector<uint64_t>{10, 20, 30}));
  EXPECT_EQ(corpus.entries()[0].fingerprint, 30u);
  EXPECT_EQ(corpus.entries()[1].fingerprint, 10u);
}

// --- Mutation + tolerant replay --------------------------------------------

TEST(Mutation, MutantsExecuteSafelyAndStayAdmissible) {
  // Protocol 2 is safe under ANY schedule, so no mutant may ever trip a
  // gate; and executed mutants must respect the fault budget (<= t crashes)
  // because crash injection is capped and re-crashing a dead processor is
  // skipped by the tolerant replayer.
  CellOutcome base_outcome;
  const auto cell = crash_cell(5);
  (void)fingerprint_of(cell, &base_outcome);
  ASSERT_FALSE(base_outcome.schedule.actions.empty());

  sim::BatchRunner runner;
  RandomTape tape(0xc0ffee);
  for (int i = 0; i < 60; ++i) {
    const auto mutant =
        mutate_schedule(base_outcome.schedule, cell.n, cell.t, tape);
    sim::RunResult result;
    const auto outcome = run_cell_with_adversary(
        cell, std::make_unique<TolerantReplayAdversary>(mutant),
        {.measure = false, .record_schedule = true, .result_out = &result},
        runner);
    EXPECT_FALSE(outcome.violation) << outcome.violation_detail;

    int crashes = 0;
    for (const auto& action : outcome.schedule.actions) {
      crashes += action.crash ? 1 : 0;
    }
    EXPECT_LE(crashes, cell.t) << "mutant " << i << " exceeded the fault budget";
  }
}

// --- Search ----------------------------------------------------------------

SearchOptions small_search(int threads) {
  SearchOptions options;
  options.cell = crash_cell(1);
  options.chains = 3;
  options.threads = threads;
  options.seed_runs = 8;
  options.mutation_runs = 24;
  options.artifacts_dir.clear();
  return options;
}

TEST(Search, ResultIsIndependentOfThreadCount) {
  const auto one = run_search(small_search(1));
  const auto four = run_search(small_search(4));

  EXPECT_EQ(one.runs_executed, four.runs_executed);
  EXPECT_EQ(one.events_executed, four.events_executed);
  EXPECT_EQ(one.novel_fingerprints, four.novel_fingerprints);
  EXPECT_EQ(one.violations, four.violations);
  ASSERT_EQ(one.corpus.entries().size(), four.corpus.entries().size());
  for (size_t i = 0; i < one.corpus.entries().size(); ++i) {
    EXPECT_EQ(one.corpus.entries()[i].fingerprint,
              four.corpus.entries()[i].fingerprint);
    EXPECT_EQ(one.corpus.entries()[i].schedule.actions.size(),
              four.corpus.entries()[i].schedule.actions.size());
  }
}

TEST(Search, MutationOutperformsNothing) {
  // The mutation phase must contribute coverage beyond its seeding prefix:
  // same seed phase, with and without the mutation budget.
  auto seeded_only = small_search(1);
  seeded_only.mutation_runs = 0;
  const auto without = run_search(seeded_only);
  const auto with = run_search(small_search(1));
  EXPECT_GT(with.novel_fingerprints, without.novel_fingerprints);
}

TEST(Search, CorpusSaveLoadReplayRoundTrip) {
  TempDir dir;
  const auto summary = run_search(small_search(2));
  ASSERT_FALSE(summary.corpus.entries().empty());
  ASSERT_EQ(summary.violations, 0);

  const auto dirs = save_corpus(dir.str(), summary.corpus);
  EXPECT_EQ(dirs.size(), summary.corpus.entries().size());
  const auto loaded = load_corpus(dir.str());
  ASSERT_EQ(loaded.size(), summary.corpus.entries().size());

  sim::BatchRunner runner;
  for (size_t i = 0; i < loaded.size(); ++i) {
    SCOPED_TRACE("entry " + std::to_string(i));
    const auto& saved = summary.corpus.entries()[i];
    EXPECT_EQ(loaded[i].fingerprint, saved.fingerprint);
    EXPECT_EQ(loaded[i].config.serialize(), saved.config.serialize());
    ASSERT_EQ(loaded[i].schedule.actions.size(), saved.schedule.actions.size());

    // Strict replay of the stored schedule must reproduce the exact verdict
    // and the exact fingerprint the entry was distilled under.
    sim::RunResult result;
    const auto outcome = run_cell_with_adversary(
        loaded[i].config,
        std::make_unique<sim::ReplayAdversary>(loaded[i].schedule),
        {.measure = false, .record_schedule = true, .result_out = &result},
        runner);
    EXPECT_FALSE(outcome.violation) << outcome.violation_detail;
    EXPECT_EQ(run_fingerprint(loaded[i].config, result, outcome.schedule,
                              outcome.stages),
              saved.fingerprint);
  }
}

TEST(Search, ViolationsAreShrunkAndArchived) {
  // The regression the ISSUE calls out: search-mode findings must flow
  // through the same ddmin-shrink → artifact pipeline as sweep findings.
  // kBroken violates agreement under crash-free random schedules by design.
  TempDir dir;
  SearchOptions options;
  options.cell.protocol = ProtocolKind::kBroken;
  options.cell.adversary = AdversaryKind::kRandom;
  options.cell.n = 3;
  options.cell.t = 1;
  options.cell.seed = 1;
  options.chains = 1;
  options.threads = 1;
  options.seed_runs = 4;
  options.mutation_runs = 4;
  options.artifacts_dir = dir.str();

  const auto summary = run_search(options);
  ASSERT_GT(summary.violations, 0);
  EXPECT_EQ(summary.violations,
            static_cast<int64_t>(summary.violation_reports.size()));
  // Violating runs never seed the corpus (its entries double as clean
  // replay regressions).
  EXPECT_EQ(summary.corpus.entries().size(), 0u);

  for (const auto& report : summary.violation_reports) {
    SCOPED_TRACE(report.config.id());
    EXPECT_GT(report.shrunk_actions, 0u);
    EXPECT_LE(report.shrunk_actions, report.original_actions);
    EXPECT_LT(report.shrunk_actions, report.original_actions)
        << "ddmin should strip the schedule's irrelevant suffix";
    ASSERT_FALSE(report.artifact_path.empty());

    // The artifact must reproduce standalone, exactly like a sweep artifact
    // fed to swarm_cli --replay.
    const auto artifact = load_artifact(report.artifact_path);
    EXPECT_EQ(artifact.schedule.actions.size(), report.shrunk_actions);
    EXPECT_TRUE(replay_still_violates(artifact.config, artifact.schedule));
  }
}

}  // namespace
}  // namespace rcommit::swarm
