// Tests for tools/rcommit_lint against its fixture corpus (one bad + one
// good snippet per rule) plus inline cases for annotation hygiene. Fixtures
// carry their virtual repo path on the first line (`// LINT_PATH: ...`) so
// rule scoping can be exercised without the fixture living in src/.

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "tools/rcommit_lint/lint.h"

namespace rcommit::lint {
namespace {

struct Fixture {
  std::string virtual_path;
  std::string content;
};

Fixture load_fixture(const std::string& name) {
  const std::string path = std::string(RCOMMIT_LINT_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  Fixture f;
  f.content = buf.str();
  const std::string kDirective = "// LINT_PATH: ";
  EXPECT_EQ(f.content.rfind(kDirective, 0), 0u)
      << name << " must start with a LINT_PATH directive";
  const size_t eol = f.content.find('\n');
  f.virtual_path = f.content.substr(kDirective.size(), eol - kDirective.size());
  return f;
}

std::set<std::string> rules_fired(const std::vector<Diagnostic>& diags) {
  std::set<std::string> rules;
  for (const auto& d : diags) rules.insert(d.rule);
  return rules;
}

std::string dump(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) out += format(d) + "\n";
  return out;
}

class RuleCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(RuleCorpus, FiresOnBadFixture) {
  const std::string rule = GetParam();
  std::string name = rule;
  std::transform(name.begin(), name.end(), name.begin(), ::tolower);
  const Fixture bad = load_fixture(name + "_bad.cpp");
  const auto diags = lint_content(bad.virtual_path, bad.content);
  EXPECT_TRUE(rules_fired(diags).count(rule))
      << rule << " did not fire on its bad fixture:\n" << dump(diags);
  // The bad fixture is dirty only in the dimension it demonstrates.
  for (const auto& d : diags) EXPECT_EQ(d.rule, rule) << dump(diags);
}

TEST_P(RuleCorpus, SilentOnGoodFixture) {
  const std::string rule = GetParam();
  std::string name = rule;
  std::transform(name.begin(), name.end(), name.begin(), ::tolower);
  const Fixture good = load_fixture(name + "_good.cpp");
  const auto diags = lint_content(good.virtual_path, good.content);
  EXPECT_TRUE(diags.empty())
      << rule << " good fixture should be clean:\n" << dump(diags);
}

INSTANTIATE_TEST_SUITE_P(AllRules, RuleCorpus,
                         ::testing::Values("R1", "R2", "R3", "R4", "R5", "R6"));

TEST(LintRegistry, CoversAllSixRules) {
  std::set<std::string> ids;
  for (const auto& r : rule_registry()) ids.insert(r.id);
  EXPECT_EQ(ids, (std::set<std::string>{"R1", "R2", "R3", "R4", "R5", "R6"}));
}

TEST(LintScoping, R1SkipsTheRealTimeLayers) {
  const std::string code =
      "#include <chrono>\n"
      "auto f() { return std::chrono::steady_clock::now(); }\n";
  // Determinism is the contract in the core and its building blocks.
  EXPECT_FALSE(lint_content("src/protocol/x.cpp", code).empty());
  EXPECT_FALSE(lint_content("src/common/x.cpp", code).empty());
  EXPECT_FALSE(lint_content("tools/swarm_cli.cpp", code).empty());
  // The real-time layers read clocks as part of their job; rcommit_analyze
  // A2 tracks their taint into the core instead.
  EXPECT_TRUE(lint_content("src/swarm/x.cpp", code).empty());
  EXPECT_TRUE(lint_content("src/transport/x.cpp", code).empty());
  EXPECT_TRUE(lint_content("src/db/x.cpp", code).empty());
  EXPECT_TRUE(lint_content("bench/x.cpp", code).empty());
  EXPECT_TRUE(lint_content("tests/x.cpp", code).empty());
}

TEST(LintScoping, R6AppliesOnlyToSimHotPathFiles) {
  const std::string code =
      "#include <unordered_map>\nstd::unordered_map<long, int> m;\n";
  EXPECT_FALSE(lint_content("src/sim/simulator.cpp", code).empty());
  EXPECT_FALSE(lint_content("src/sim/in_flight.h", code).empty());
  // Post-run analyses in src/sim are out of scope, as is everything else.
  EXPECT_TRUE(lint_content("src/sim/rounds.cpp", code).empty());
  EXPECT_TRUE(lint_content("src/swarm/runner.cpp", code).empty());
}

TEST(LintAllow, SuppressionWithoutReasonIsItselfADiagnostic) {
  const Fixture f = load_fixture("allow_missing_reason.cpp");
  const auto diags = lint_content(f.virtual_path, f.content);
  const auto rules = rules_fired(diags);
  EXPECT_TRUE(rules.count("allow")) << dump(diags);
  // And the unreasoned annotation does not suppress the finding.
  EXPECT_TRUE(rules.count("R1")) << dump(diags);
}

TEST(LintAllow, ReasonedSuppressionSilencesBothPositions) {
  const Fixture f = load_fixture("allow_good.cpp");
  const auto diags = lint_content(f.virtual_path, f.content);
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

TEST(LintAllow, StaleSuppressionIsFlagged) {
  const auto diags = lint_content(
      "src/protocol/x.cpp",
      "// RCOMMIT_LINT_ALLOW(R1): nothing on the next line actually fires\n"
      "int x = 1;\n");
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_EQ(diags[0].rule, "allow");
  EXPECT_NE(diags[0].message.find("stale"), std::string::npos);
}

TEST(LintAllow, UnknownRuleNameIsFlagged) {
  const auto diags = lint_content(
      "src/protocol/x.cpp",
      "// RCOMMIT_LINT_ALLOW(R9): no such rule\nint x = 1;\n");
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_EQ(diags[0].rule, "allow");
  EXPECT_NE(diags[0].message.find("unknown rule"), std::string::npos);
}

TEST(LintAllow, FileScopeSuppressionCoversWholeFile) {
  const auto diags = lint_content(
      "src/transport/x.cpp",
      "// RCOMMIT_LINT_ALLOW_FILE(R2): fixture — real-time layer owns threads\n"
      "#include <mutex>\n"
      "std::mutex a;\n"
      "std::mutex b;\n");
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

TEST(LintScoping, SameCodeJudgedByPath) {
  const std::string code = "#include <thread>\nstd::thread t;\n";
  EXPECT_FALSE(lint_content("src/sim/x.cpp", code).empty());
  EXPECT_TRUE(lint_content("src/swarm/x.cpp", code).empty());
  EXPECT_TRUE(lint_content("src/db/rpc.cpp", code).empty());
  EXPECT_TRUE(lint_content("src/db/multishot.cpp", code).empty());
  EXPECT_FALSE(lint_content("src/db/kv.cpp", code).empty());
  // Component matching works on absolute paths too.
  EXPECT_FALSE(lint_content("/ci/checkout/src/sim/x.cpp", code).empty());
}

TEST(LintScanner, IgnoresCommentsAndStrings) {
  const auto diags = lint_content(
      "src/protocol/x.cpp",
      "// std::random_device in a comment is fine\n"
      "/* std::chrono::steady_clock::now() too */\n"
      "const char* s = \"std::rand() getenv unordered_map\";\n"
      "const char* r = R\"(std::mutex time(nullptr))\";\n");
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

TEST(LintScanner, OutputIsDeterministic) {
  const Fixture bad = load_fixture("r1_bad.cpp");
  const auto a = lint_content(bad.virtual_path, bad.content);
  const auto b = lint_content(bad.virtual_path, bad.content);
  EXPECT_EQ(dump(a), dump(b));
}

TEST(LintDiagnostics, FormatIsFileLineRuleMessage) {
  const Diagnostic d{"src/sim/x.cpp", 42, "R3", "boom"};
  EXPECT_EQ(format(d), "src/sim/x.cpp:42: [R3] boom");
}

}  // namespace
}  // namespace rcommit::lint
