// Tests for the baseline protocols: 2PC and 3PC happy paths, vote handling,
// every timeout rule, and the precise failure scenarios the paper's model is
// designed to rule out.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "adversary/latemsg.h"
#include "adversary/stretch.h"
#include "baselines/benor.h"
#include "baselines/threepc.h"
#include "baselines/twopc.h"
#include "sim/simulator.h"

namespace rcommit::baselines {
namespace {

using sim::RunResult;
using sim::RunStatus;
using sim::Simulator;

const SystemParams kParams{.n = 5, .t = 2, .k = 2};

std::vector<std::unique_ptr<sim::Process>> twopc_fleet(
    const std::vector<int>& votes, TwoPcTimeoutPolicy policy, Tick timeout = 0) {
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int vote : votes) {
    TwoPcProcess::Options options;
    options.params = kParams;
    options.initial_vote = vote;
    options.policy = policy;
    options.timeout = timeout;
    fleet.push_back(std::make_unique<TwoPcProcess>(options));
  }
  return fleet;
}

std::vector<std::unique_ptr<sim::Process>> threepc_fleet(const std::vector<int>& votes,
                                                         Tick timeout = 0) {
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int vote : votes) {
    ThreePcProcess::Options options;
    options.params = kParams;
    options.initial_vote = vote;
    options.timeout = timeout;
    fleet.push_back(std::make_unique<ThreePcProcess>(options));
  }
  return fleet;
}

// --- 2PC happy paths -----------------------------------------------------------

TEST(TwoPc, AllYesCommits) {
  Simulator sim({.seed = 1}, twopc_fleet({1, 1, 1, 1, 1}, TwoPcTimeoutPolicy::kBlock),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kCommit);
}

TEST(TwoPc, OneNoAborts) {
  for (int aborter = 0; aborter < 5; ++aborter) {
    std::vector<int> votes(5, 1);
    votes[static_cast<size_t>(aborter)] = 0;
    Simulator sim({.seed = 2}, twopc_fleet(votes, TwoPcTimeoutPolicy::kBlock),
                  adversary::make_on_time_adversary());
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided) << "aborter " << aborter;
    for (const auto& d : result.decisions) {
      EXPECT_EQ(*d, Decision::kAbort) << "aborter " << aborter;
    }
  }
}

TEST(TwoPc, RandomTimingStillConsistentWhenOnTimeEnough) {
  // Delays below the timeout: 2PC behaves.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Simulator sim({.seed = seed}, twopc_fleet({1, 1, 1, 1, 1}, TwoPcTimeoutPolicy::kBlock),
                  adversary::make_random_adversary(seed, 3));
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided);
    EXPECT_FALSE(result.has_conflicting_decisions());
  }
}

// --- 2PC timeout rules -----------------------------------------------------------

TEST(TwoPc, ParticipantTimesOutBeforeVotingAndAbortsSafely) {
  // Stretch every delay past the timeout: participants never see PREPARE in
  // time, abort unvoted; the coordinator times out without votes and aborts.
  Simulator sim({.seed = 3, .max_events = 20'000},
                twopc_fleet({1, 1, 1, 1, 1}, TwoPcTimeoutPolicy::kBlock,
                            /*timeout=*/6),
                std::make_unique<adversary::DelayStretchAdversary>(30));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kAbort);
}

TEST(TwoPc, LateDecisionSplitsPresumeAbort) {
  // The paper's single-late-message scenario: one participant's COMMIT is
  // late; under presume-abort it unilaterally aborts a committed transaction.
  adversary::LateRule rule{.from = 0, .to = 2, .nth = 1, .extra_delay = 60};
  Simulator sim({.seed = 4, .max_events = 20'000},
                twopc_fleet({1, 1, 1, 1, 1}, TwoPcTimeoutPolicy::kPresumeAbort),
                std::make_unique<adversary::LateMessageAdversary>(
                    std::vector<adversary::LateRule>{rule}));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_TRUE(result.has_conflicting_decisions());
  EXPECT_EQ(result.decisions[2], Decision::kAbort);
  EXPECT_EQ(result.decisions[0], Decision::kCommit);
}

TEST(TwoPc, LateDecisionBlocksUnderBlockPolicy) {
  adversary::CrashPlan plan{.victim = 0, .at_clock = 2, .suppress_sends_to = {2}};
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::vector<adversary::CrashPlan>{plan});
  Simulator sim({.seed = 5, .max_events = 20'000},
                twopc_fleet({1, 1, 1, 1, 1}, TwoPcTimeoutPolicy::kBlock),
                std::move(adv));
  const auto result = sim.run();
  // Participant 2 is prepared and blocked forever; no conflicting decisions.
  EXPECT_EQ(result.status, RunStatus::kEventLimit);
  EXPECT_FALSE(result.decisions[2].has_value());
  EXPECT_FALSE(result.has_conflicting_decisions());
  EXPECT_EQ(result.decisions[1], Decision::kCommit);
}

TEST(TwoPc, CoordinatorCrashBeforePrepareAbortsAll) {
  adversary::CrashPlan plan{.victim = 0, .at_clock = 1, .suppress_sends_to = {}};
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::vector<adversary::CrashPlan>{plan});
  Simulator sim({.seed = 6, .max_events = 20'000},
                twopc_fleet({1, 1, 1, 1, 1}, TwoPcTimeoutPolicy::kBlock,
                            /*timeout=*/10),
                std::move(adv));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (int p = 1; p < 5; ++p) {
    EXPECT_EQ(result.decisions[static_cast<size_t>(p)], Decision::kAbort);
  }
}

TEST(TwoPc, ValidatesOptions) {
  TwoPcProcess::Options options;
  options.params = kParams;
  options.initial_vote = 7;
  EXPECT_THROW(TwoPcProcess proc(options), CheckFailure);
}

// --- 3PC -------------------------------------------------------------------------

TEST(ThreePc, AllYesCommits) {
  Simulator sim({.seed = 7}, threepc_fleet({1, 1, 1, 1, 1}),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kCommit);
}

TEST(ThreePc, OneNoAborts) {
  Simulator sim({.seed = 8}, threepc_fleet({1, 1, 0, 1, 1}),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kAbort);
}

TEST(ThreePc, NonblockingUnderCoordinatorCrashAfterPreCommit) {
  // 3PC's selling point over 2PC: coordinator dies after PRECOMMIT reached
  // everyone; participants time out in the precommitted state and commit —
  // nobody blocks, nobody diverges. (Sound because the run is synchronous.)
  adversary::CrashPlan plan{.victim = 0, .at_clock = 3, .suppress_sends_to = {}};
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::vector<adversary::CrashPlan>{plan});
  Simulator sim({.seed = 9, .max_events = 20'000}, threepc_fleet({1, 1, 1, 1, 1}),
                std::move(adv));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (int p = 1; p < 5; ++p) {
    EXPECT_EQ(result.decisions[static_cast<size_t>(p)], Decision::kCommit);
  }
  EXPECT_FALSE(result.has_conflicting_decisions());
}

TEST(ThreePc, NonblockingUnderCoordinatorCrashBeforePreCommit) {
  // Coordinator dies right after collecting votes, before any PRECOMMIT:
  // prepared participants time out and abort. Consistent.
  adversary::CrashPlan plan{.victim = 0, .at_clock = 2, .suppress_sends_to = {1, 2, 3, 4}};
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::vector<adversary::CrashPlan>{plan});
  Simulator sim({.seed = 10, .max_events = 20'000}, threepc_fleet({1, 1, 1, 1, 1}),
                std::move(adv));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (int p = 1; p < 5; ++p) {
    EXPECT_EQ(result.decisions[static_cast<size_t>(p)], Decision::kAbort);
  }
}

TEST(ThreePc, LatePreCommitSplitsDecisions) {
  // The timing violation: participant 3's PRECOMMIT is late. Its prepared
  // timeout says abort; the precommitted others commit — the wrong answer
  // the paper attributes to synchronous protocols under one late message.
  adversary::LateRule rule{.from = 0, .to = 3, .nth = 1, .extra_delay = 60};
  Simulator sim({.seed = 11, .max_events = 20'000}, threepc_fleet({1, 1, 1, 1, 1}),
                std::make_unique<adversary::LateMessageAdversary>(
                    std::vector<adversary::LateRule>{rule}));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_TRUE(result.has_conflicting_decisions());
  EXPECT_EQ(result.decisions[3], Decision::kAbort);
  EXPECT_EQ(result.decisions[1], Decision::kCommit);
}

TEST(ThreePc, ValidatesOptions) {
  ThreePcProcess::Options options;
  options.params = kParams;
  options.initial_vote = -1;
  EXPECT_THROW(ThreePcProcess proc(options), CheckFailure);
}

// --- Ben-Or helpers ---------------------------------------------------------------

TEST(BenOr, LocalCoinFleetReachesAgreement) {
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int i = 0; i < 5; ++i) fleet.push_back(make_benor_process(kParams, i % 2));
  Simulator sim({.seed = 12}, std::move(fleet), adversary::make_random_adversary(3, 2));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_FALSE(result.has_conflicting_decisions());
}

TEST(BenOr, SharedCoinFleetUsesProvidedCoins) {
  std::vector<uint8_t> coins = {1, 1, 1, 1, 1};
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int i = 0; i < 5; ++i) {
    fleet.push_back(make_shared_coin_process(kParams, i % 2, coins));
  }
  Simulator sim({.seed = 13}, std::move(fleet), adversary::make_random_adversary(5, 2));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_FALSE(result.has_conflicting_decisions());
}

TEST(BenOr, UnanimousInputDecidesThatValueRegardlessOfCoins) {
  // Validity must not depend on the coin list contents.
  for (uint8_t coin : {0, 1}) {
    std::vector<uint8_t> coins(5, coin);
    std::vector<std::unique_ptr<sim::Process>> fleet;
    for (int i = 0; i < 5; ++i) fleet.push_back(make_shared_coin_process(kParams, 0, coins));
    Simulator sim({.seed = 14}, std::move(fleet), adversary::make_on_time_adversary());
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided);
    for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kAbort);
  }
}

}  // namespace
}  // namespace rcommit::baselines
