// Conformance matrix: the §2.4 correctness conditions checked over the full
// product of adversary family × vote pattern × system size × seed. Each cell
// is a distinct (timing, input) combination — the broadest systematic sweep
// in the suite, complementing the randomized fuzzer.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "adversary/adaptive.h"
#include "adversary/basic.h"
#include "adversary/latemsg.h"
#include "adversary/stretch.h"
#include "protocol/commit.h"
#include "protocol/invariants.h"
#include "sim/simulator.h"

namespace rcommit::protocol {
namespace {

enum class Family {
  kOnTime,
  kRandom,
  kMostlyOnTime,
  kStretch,
  kStaller,
  kLateLinks,
};

const char* family_name(Family f) {
  switch (f) {
    case Family::kOnTime: return "OnTime";
    case Family::kRandom: return "Random";
    case Family::kMostlyOnTime: return "MostlyOnTime";
    case Family::kStretch: return "Stretch";
    case Family::kStaller: return "Staller";
    default: return "LateLinks";
  }
}

std::unique_ptr<sim::Adversary> make_family(Family family, const SystemParams& params,
                                            uint64_t seed) {
  switch (family) {
    case Family::kOnTime:
      return adversary::make_on_time_adversary();
    case Family::kRandom:
      return adversary::make_random_adversary(seed, 5);
    case Family::kMostlyOnTime:
      return adversary::make_mostly_on_time_adversary(seed, params.k, 0.15,
                                                      5 * params.k);
    case Family::kStretch:
      return std::make_unique<adversary::DelayStretchAdversary>(7);
    case Family::kStaller:
      return std::make_unique<adversary::QuorumStallAdversary>(params.t, 48, seed);
    case Family::kLateLinks: {
      // A few arbitrary always-late links on an otherwise delay-1 schedule.
      std::vector<adversary::LateRule> rules;
      rules.push_back({.from = 0, .to = params.n - 1,
                       .nth = adversary::LateRule::kEveryMessage,
                       .extra_delay = 15});
      rules.push_back({.from = params.n - 1, .to = 0,
                       .nth = adversary::LateRule::kEveryMessage,
                       .extra_delay = 15});
      return std::make_unique<adversary::LateMessageAdversary>(std::move(rules));
    }
  }
  return nullptr;
}

class ConformanceMatrix
    : public ::testing::TestWithParam<std::tuple<Family, int, int, uint64_t>> {};

TEST_P(ConformanceMatrix, CorrectnessConditionsHold) {
  const auto [family, n, vote_pattern, seed] = GetParam();
  SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  std::vector<int> votes(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) votes[static_cast<size_t>(i)] = (vote_pattern >> i) & 1;

  sim::Simulator sim({.seed = seed, .max_events = 300'000},
                     make_commit_fleet(params, votes),
                     make_family(family, params, seed * 31 + 7));
  const auto result = sim.run();

  // Every admissible family must terminate...
  ASSERT_EQ(result.status, sim::RunStatus::kAllDecided)
      << family_name(family) << " n=" << n << " votes=" << vote_pattern;
  // ...and satisfy all three conditions.
  EXPECT_NO_THROW(check_commit_conditions(result, votes, params.k));
}

std::string matrix_name(
    const ::testing::TestParamInfo<ConformanceMatrix::ParamType>& info) {
  const auto family = std::get<0>(info.param);
  const auto n = std::get<1>(info.param);
  const auto pattern = std::get<2>(info.param);
  const auto seed = std::get<3>(info.param);
  return std::string(family_name(family)) + "_n" + std::to_string(n) + "_v" +
         std::to_string(pattern) + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, ConformanceMatrix,
    ::testing::Combine(::testing::Values(Family::kOnTime, Family::kRandom,
                                         Family::kMostlyOnTime, Family::kStretch,
                                         Family::kStaller, Family::kLateLinks),
                       ::testing::Values(3, 5, 7),
                       ::testing::Values(0, 1, 2, 5, 7, 21, 127),
                       ::testing::Values(1u, 2u)),
    matrix_name);

// Larger-n smoke: the protocol at sizes past anything the benches sweep.
class LargeNSmoke : public ::testing::TestWithParam<int> {};

TEST_P(LargeNSmoke, CommitsAtScale) {
  const int n = GetParam();
  // Delays stay within K so the run is on-time and commit validity binds.
  SystemParams params{.n = n, .t = (n - 1) / 2, .k = 4};
  std::vector<int> votes(static_cast<size_t>(n), 1);
  sim::Simulator sim({.seed = 17, .max_events = 2'000'000},
                     make_commit_fleet(params, votes),
                     adversary::make_random_adversary(5, 2));
  const auto result = sim.run();
  ASSERT_EQ(result.status, sim::RunStatus::kAllDecided);
  EXPECT_EQ(result.agreed_decision(), Decision::kCommit);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LargeNSmoke, ::testing::Values(15, 21, 31));

}  // namespace
}  // namespace rcommit::protocol
