// MultiShotDb: the pipelined multi-shot transaction engine.
//
//   * the 64-bit txn-id space composes and decomposes, and engine-allocated
//     ids are unique across shards with no coordination;
//   * execute_pipelined is a pure function of (options, workload) — same
//     seed, same decisions, same state;
//   * the no-wait lock table arbitrates conflicts deterministically (the
//     later arrival aborts; disjoint instances commit);
//   * a concurrency ramp (1 / 8 / 64 client threads) with a per-key
//     serializability read-back oracle: every committed write is readable,
//     every aborted write is not, and contended keys hold a committed value.
//
// RCOMMIT_LINT_ALLOW_FILE(R2): the concurrency ramp exists to hammer the
// engine from real client threads
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "db/multishot.h"
#include "db/recovery.h"

namespace rcommit::db {
namespace {

namespace fs = std::filesystem;

class MultiShotFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = fs::temp_directory_path() /
           ("rcommit_multishot_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] MultiShotDb::Options options(const std::string& sub) const {
    MultiShotDb::Options opts;
    opts.shard_count = 3;
    opts.data_dir = dir_ / sub;
    opts.seed = 42;
    return opts;
  }

  fs::path dir_;
};

TEST(MultiShotTxnId, ComposesAndDecomposes) {
  static_assert(make_txn_id(0, 1) == 1);
  static_assert(txn_origin(make_txn_id(7, 123)) == 7);
  static_assert(txn_sequence(make_txn_id(7, 123)) == 123);
  // 32767 is the largest legal origin: the top bit of the 16-bit origin
  // field is the TxnId sign bit, which the engine constructor reserves.
  const TxnId id = make_txn_id(32767, kTxnSequenceMask);
  EXPECT_EQ(txn_origin(id), 32767);
  EXPECT_EQ(txn_sequence(id), kTxnSequenceMask);
  // Distinct origins can never collide, whatever their sequences.
  EXPECT_NE(make_txn_id(1, 5), make_txn_id(2, 5));
  EXPECT_NE(make_txn_id(1, kTxnSequenceMask), make_txn_id(2, 1));
}

TEST_F(MultiShotFixture, EngineAllocatedIdsAreUniqueAcrossShards) {
  MultiShotDb database(options("unique"));
  for (int32_t origin = 0; origin < 3; ++origin) {
    for (int i = 0; i < 4; ++i) {
      const GeneratedTxn writes = {
          {origin, {{"o" + std::to_string(origin) + ":k" + std::to_string(i),
                     "v"}}}};
      EXPECT_TRUE(database.execute(origin, writes).decided);
    }
  }
  // Read the ids back out of the WALs: all distinct, each tagged with the
  // origin shard that allocated it.
  std::vector<KvStore*> shards;
  for (int32_t i = 0; i < 3; ++i) shards.push_back(&database.shard(i));
  RecoveryManager recovery(shards, {});
  const BatchSurvey survey = recovery.survey_all();
  std::set<TxnId> seen;
  for (const auto& shard_statuses : survey.statuses) {
    for (const auto& [txn, status] : shard_statuses) {
      (void)status;
      seen.insert(txn);
      EXPECT_GE(txn_origin(txn), 0);
      EXPECT_LT(txn_origin(txn), 3);
      EXPECT_GE(txn_sequence(txn), 1);  // sequence 0 is reserved
    }
  }
  EXPECT_EQ(seen.size(), 12u);  // 3 origins x 4 txns, no collisions
  std::map<int32_t, int> per_origin;
  for (const TxnId txn : seen) ++per_origin[txn_origin(txn)];
  for (int32_t origin = 0; origin < 3; ++origin) {
    EXPECT_EQ(per_origin[origin], 4) << "origin " << origin;
  }
}

TEST_F(MultiShotFixture, PipelinedBatchIsDeterministic) {
  std::vector<GeneratedTxn> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back({{i % 3, {{"k" + std::to_string(i), "v"}}},
                     {(i + 1) % 3, {{"k" + std::to_string(i), "v"}}}});
  }
  const auto run = [&](const std::string& sub) {
    MultiShotDb database(options(sub));
    const auto outcomes = database.execute_pipelined(0, batch);
    std::vector<std::map<std::string, std::string>> snapshots;
    for (int32_t i = 0; i < 3; ++i) {
      snapshots.push_back(database.shard(i).snapshot());
    }
    return std::make_pair(outcomes, snapshots);
  };
  const auto [first_outcomes, first_state] = run("a");
  const auto [second_outcomes, second_state] = run("b");
  ASSERT_EQ(first_outcomes.size(), second_outcomes.size());
  for (size_t i = 0; i < first_outcomes.size(); ++i) {
    EXPECT_EQ(first_outcomes[i].decided, second_outcomes[i].decided);
    EXPECT_EQ(first_outcomes[i].decision, second_outcomes[i].decision);
  }
  EXPECT_EQ(first_state, second_state);
}

TEST_F(MultiShotFixture, LockConflictAbortMatrix) {
  // One batch; within it the no-wait lock table decides every conflict in
  // arrival order: the earlier instance holds its keys through the whole
  // pipeline, the later arrival votes abort at its first locked key.
  MultiShotDb database(options("conflicts"));
  const std::vector<GeneratedTxn> batch = {
      {{0, {{"a", "t0"}}}, {1, {{"b", "t0"}}}},  // 0: commits
      {{0, {{"a", "t1"}}}},                      // 1: loses "a" on shard 0
      {{1, {{"b", "t2"}}}, {2, {{"c", "t2"}}}},  // 2: loses "b" on shard 1 —
                                                 //    so it never locks "c"
      {{2, {{"d", "t3"}}}},                      // 3: disjoint — commits
      {{0, {{"e", "t4"}}}, {2, {{"c", "t4"}}}},  // 4: "c" is free (2's prepare
                                                 //    short-circuited) — commits
      {{2, {{"c", "t5"}}}},                      // 5: loses "c" to 4
  };
  const auto outcomes = database.execute_pipelined(0, batch);
  ASSERT_EQ(outcomes.size(), 6u);
  const std::vector<Decision> expected = {Decision::kCommit, Decision::kAbort,
                                          Decision::kAbort, Decision::kCommit,
                                          Decision::kCommit, Decision::kAbort};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(outcomes[i].decided) << "txn " << i;
    EXPECT_EQ(outcomes[i].decision, expected[i]) << "txn " << i;
  }
  EXPECT_EQ(database.stats().committed, 3);
  EXPECT_EQ(database.stats().conflict_aborts, 3);
  EXPECT_EQ(database.stats().in_doubt, 0);
  // Committed values only: conflict losers leave no trace anywhere.
  EXPECT_EQ(database.get(0, "a"), "t0");
  EXPECT_EQ(database.get(1, "b"), "t0");
  EXPECT_EQ(database.get(2, "c"), "t4");
  EXPECT_EQ(database.get(2, "d"), "t3");
  EXPECT_EQ(database.get(0, "e"), "t4");
}

TEST_F(MultiShotFixture, ConflictOrderIsDeterministicAcrossRuns) {
  const std::vector<GeneratedTxn> batch = {
      {{0, {{"x", "first"}}}, {1, {{"y", "first"}}}},
      {{1, {{"y", "second"}}}, {2, {{"z", "second"}}}},
  };
  for (const std::string sub : {"order-a", "order-b"}) {
    MultiShotDb database(options(sub));
    const auto outcomes = database.execute_pipelined(1, batch);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].decision, Decision::kCommit);
    EXPECT_EQ(outcomes[1].decision, Decision::kAbort);
  }
}

// The ramp: `clients` threads each run `txns_per_client` transactions
// through execute(). Private keys form an exact read-back oracle; one
// contended key per shard checks that whatever survives was committed.
void run_ramp(const MultiShotDb::Options& opts, int clients,
              int txns_per_client) {
  MultiShotDb database(opts);
  std::mutex mu;
  std::map<std::string, std::string> committed_contended;  // value -> value
  std::vector<std::map<int32_t, std::map<std::string, std::string>>> expected(
      static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < txns_per_client; ++i) {
        const int32_t origin = c % opts.shard_count;
        const int32_t other = (c + 1) % opts.shard_count;
        const std::string value =
            "c" + std::to_string(c) + ":v" + std::to_string(i);
        if (i % 4 == 3) {
          // Contended cross-shard write: may commit or conflict-abort.
          const GeneratedTxn writes = {{origin, {{"contended", value}}},
                                       {other, {{"contended", value}}}};
          const auto outcome = database.execute(origin, writes);
          ASSERT_TRUE(outcome.decided);
          if (outcome.decision == Decision::kCommit) {
            std::lock_guard<std::mutex> hold(mu);
            committed_contended[value] = value;
          }
          continue;
        }
        // Private cross-shard write: no other client touches these keys, so
        // it must commit, and the last write per key must read back.
        const std::string key =
            "c" + std::to_string(c) + ":k" + std::to_string(i % 2);
        const GeneratedTxn writes = {{origin, {{key, value}}},
                                     {other, {{key, value}}}};
        const auto outcome = database.execute(origin, writes);
        ASSERT_TRUE(outcome.decided);
        ASSERT_EQ(outcome.decision, Decision::kCommit);
        expected[static_cast<size_t>(c)][origin][key] = value;
        expected[static_cast<size_t>(c)][other][key] = value;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Quiescent read-back: serializability per key.
  for (int c = 0; c < clients; ++c) {
    for (const auto& [shard, keys] : expected[static_cast<size_t>(c)]) {
      for (const auto& [key, value] : keys) {
        EXPECT_EQ(database.get(shard, key), value)
            << "client " << c << " shard " << shard;
      }
    }
  }
  for (int32_t shard = 0; shard < opts.shard_count; ++shard) {
    const auto contended = database.get(shard, "contended");
    if (contended.has_value()) {
      EXPECT_TRUE(committed_contended.count(*contended) > 0)
          << "shard " << shard << " holds an uncommitted value " << *contended;
    }
  }
  const auto stats = database.stats();
  EXPECT_EQ(stats.in_doubt, 0);
  EXPECT_EQ(stats.committed + stats.aborted,
            static_cast<int64_t>(clients) * txns_per_client);
  EXPECT_EQ(stats.aborted, stats.conflict_aborts);  // only locks abort here
}

// --- group commit + decision batching ----------------------------------------------

TEST_F(MultiShotFixture, GroupedBatchedPipelineMatchesUngroupedSemantics) {
  // Same workload through the PR 9 configuration and through group-commit +
  // decision batching: per-txn outcomes and final shard state must agree.
  // (Batched rounds run under a different instance mix, so this is semantic
  // equivalence via commit-validity, not a byte-identical trace.)
  std::vector<GeneratedTxn> batch;
  for (int i = 0; i < 12; ++i) {
    batch.push_back({{i % 3, {{"k" + std::to_string(i % 5), "v" + std::to_string(i)}}},
                    {(i + 1) % 3, {{"j" + std::to_string(i % 5), "v" + std::to_string(i)}}}});
  }
  const auto run = [&](const std::string& sub, bool grouped) {
    auto opts = options(sub);
    if (grouped) {
      opts.group_commit = true;
      opts.decision_batch = 4;
    }
    MultiShotDb database(opts);
    const auto outcomes = database.execute_pipelined(0, batch);
    std::vector<std::map<std::string, std::string>> snapshots;
    for (int32_t i = 0; i < 3; ++i) {
      snapshots.push_back(database.shard(i).snapshot());
    }
    return std::make_pair(outcomes, snapshots);
  };
  const auto [plain_outcomes, plain_state] = run("plain", false);
  const auto [group_outcomes, group_state] = run("group", true);
  ASSERT_EQ(plain_outcomes.size(), group_outcomes.size());
  for (size_t i = 0; i < plain_outcomes.size(); ++i) {
    EXPECT_EQ(plain_outcomes[i].decided, group_outcomes[i].decided) << i;
    EXPECT_EQ(plain_outcomes[i].decision, group_outcomes[i].decision) << i;
  }
  EXPECT_EQ(plain_state, group_state);
}

TEST_F(MultiShotFixture, GroupedBatchedPipelineIsDeterministic) {
  std::vector<GeneratedTxn> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back({{i % 3, {{"k" + std::to_string(i), "v"}}},
                     {(i + 2) % 3, {{"k" + std::to_string(i), "v"}}}});
  }
  const auto run = [&](const std::string& sub) {
    auto opts = options(sub);
    opts.group_commit = true;
    opts.decision_batch = 4;
    MultiShotDb database(opts);
    const auto outcomes = database.execute_pipelined(2, batch);
    std::vector<std::map<std::string, std::string>> snapshots;
    for (int32_t i = 0; i < 3; ++i) {
      snapshots.push_back(database.shard(i).snapshot());
    }
    return std::make_pair(outcomes, snapshots);
  };
  const auto [first_outcomes, first_state] = run("det-a");
  const auto [second_outcomes, second_state] = run("det-b");
  ASSERT_EQ(first_outcomes.size(), second_outcomes.size());
  for (size_t i = 0; i < first_outcomes.size(); ++i) {
    EXPECT_EQ(first_outcomes[i].decision, second_outcomes[i].decision) << i;
  }
  EXPECT_EQ(first_state, second_state);
}

TEST_F(MultiShotFixture, GroupCommitAmortizesFlushes) {
  std::vector<GeneratedTxn> batch;
  for (int i = 0; i < 24; ++i) {
    batch.push_back({{i % 3, {{"p" + std::to_string(i), "v"}}},
                     {(i + 1) % 3, {{"q" + std::to_string(i), "v"}}}});
  }
  auto plain_opts = options("flush-plain");
  MultiShotDb plain(plain_opts);
  (void)plain.execute_pipelined(0, batch);
  const WalStats plain_stats = plain.wal_stats();
  // Ungrouped: every logical append is its own physical flush.
  EXPECT_EQ(plain_stats.flushes, plain_stats.records_appended);

  auto group_opts = options("flush-group");
  group_opts.group_commit = true;
  group_opts.decision_batch = 8;
  MultiShotDb grouped(group_opts);
  (void)grouped.execute_pipelined(0, batch);
  const WalStats group_stats = grouped.wal_stats();
  // Grouped runs append at least the plain record stream (plus kBatchSeal
  // hints for multi-member decision chunks).
  EXPECT_GE(group_stats.records_appended, plain_stats.records_appended);
  // Group mode coalesces the whole pipeline into a handful of boundary
  // flushes: Phase A and Phase C per touched shard, per decision chunk.
  EXPECT_LT(group_stats.flushes * 4, group_stats.records_appended);
  EXPECT_GT(group_stats.records_per_flush(), 4.0);
}

TEST_F(MultiShotFixture, ThreadedBatchedRampKeepsOracle) {
  // The serializability ramp, with batched decision rounds and group commit
  // on: the read-back oracle must hold exactly as in the unbatched ramp.
  auto opts = options("ramp-batched");
  opts.group_commit = true;
  opts.decision_batch = 4;
  run_ramp(opts, 8, 8);
}

TEST_F(MultiShotFixture, ConcurrencyRampOneClient) {
  run_ramp(options("ramp1"), 1, 8);
}

TEST_F(MultiShotFixture, ConcurrencyRampEightClients) {
  run_ramp(options("ramp8"), 8, 8);
}

TEST_F(MultiShotFixture, ConcurrencyRampSixtyFourClients) {
  run_ramp(options("ramp64"), 64, 4);
}

}  // namespace
}  // namespace rcommit::db
