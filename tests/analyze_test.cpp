// Tests for tools/rcommit_analyze against its fixture corpus (one bad, one
// good, and one suppressed snippet per rule) plus inline cases for
// annotation hygiene and call-graph behavior. Fixtures carry their virtual
// repo path on the first line (`// ANALYZE_PATH: ...`) so layer scoping can
// be exercised without the fixture living in src/.

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/rcommit_analyze/analyze.h"

namespace rcommit::analyze {
namespace {

struct Fixture {
  std::string virtual_path;
  std::string content;
};

Fixture load_fixture(const std::string& name) {
  const std::string path =
      std::string(RCOMMIT_ANALYZE_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  Fixture f;
  f.content = buf.str();
  const std::string kDirective = "// ANALYZE_PATH: ";
  EXPECT_EQ(f.content.rfind(kDirective, 0), 0u)
      << name << " must start with an ANALYZE_PATH directive";
  const size_t eol = f.content.find('\n');
  f.virtual_path = f.content.substr(kDirective.size(), eol - kDirective.size());
  return f;
}

AnalysisResult analyze_fixture(const Fixture& f) {
  return analyze_files({FileInput{f.virtual_path, f.content}});
}

std::set<std::string> rules_fired(const std::vector<Diagnostic>& diags) {
  std::set<std::string> rules;
  for (const auto& d : diags) rules.insert(d.rule);
  return rules;
}

std::string dump(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) out += format(d) + "\n";
  return out;
}

class RuleCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(RuleCorpus, FiresOnBadFixture) {
  const std::string rule = GetParam();
  std::string name = rule;
  std::transform(name.begin(), name.end(), name.begin(), ::tolower);
  const Fixture bad = load_fixture(name + "_bad.cpp");
  const auto result = analyze_fixture(bad);
  EXPECT_TRUE(rules_fired(result.diags).count(rule))
      << rule << " did not fire on its bad fixture:\n" << dump(result.diags);
  // The bad fixture is dirty only in the dimension it demonstrates.
  for (const auto& d : result.diags) EXPECT_EQ(d.rule, rule)
      << dump(result.diags);
}

TEST_P(RuleCorpus, SilentOnGoodFixture) {
  const std::string rule = GetParam();
  std::string name = rule;
  std::transform(name.begin(), name.end(), name.begin(), ::tolower);
  const Fixture good = load_fixture(name + "_good.cpp");
  const auto result = analyze_fixture(good);
  EXPECT_TRUE(result.diags.empty())
      << rule << " good fixture should be clean:\n" << dump(result.diags);
}

TEST_P(RuleCorpus, ReasonedSuppressionIsCleanAndNotStale) {
  const std::string rule = GetParam();
  std::string name = rule;
  std::transform(name.begin(), name.end(), name.begin(), ::tolower);
  const Fixture allow = load_fixture(name + "_allow.cpp");
  const auto result = analyze_fixture(allow);
  EXPECT_TRUE(result.diags.empty())
      << rule << " allow fixture should be clean:\n" << dump(result.diags);
}

INSTANTIATE_TEST_SUITE_P(AllRules, RuleCorpus,
                         ::testing::Values("A1", "A2", "A3", "A4"));

TEST(AnalyzeRegistry, CoversAllFourRules) {
  std::set<std::string> ids;
  for (const auto& r : rule_registry()) ids.insert(r.id);
  EXPECT_EQ(ids, (std::set<std::string>{"A1", "A2", "A3", "A4"}));
}

TEST(AnalyzeA1, DiagnosticCarriesTheCallChain) {
  const Fixture bad = load_fixture("a1_bad.cpp");
  const auto result = analyze_fixture(bad);
  ASSERT_FALSE(result.diags.empty());
  const std::string& msg = result.diags[0].message;
  EXPECT_NE(msg.find("step"), std::string::npos) << msg;
  EXPECT_NE(msg.find("->"), std::string::npos) << msg;
  EXPECT_NE(msg.find("record"), std::string::npos) << msg;
}

TEST(AnalyzeA1, CountsRoots) {
  const Fixture good = load_fixture("a1_good.cpp");
  EXPECT_EQ(analyze_fixture(good).a1_roots, 1);
  const Fixture a2 = load_fixture("a2_good.cpp");
  EXPECT_EQ(analyze_fixture(a2).a1_roots, 0);
}

TEST(AnalyzeA1, CrossFileEdgesResolve) {
  // The root lives in one file, the allocation two files away.
  const std::vector<FileInput> files = {
      {"src/sim/a.cpp",
       "namespace rcommit::sim {\n"
       "void helper();\n"
       "// RCOMMIT_ANALYZE_ROOT(A1): fixture root\n"
       "void run() { helper(); }\n"
       "}\n"},
      {"src/sim/b.cpp",
       "#include <vector>\n"
       "namespace rcommit::sim {\n"
       "std::vector<int> v;\n"
       "void helper() { v.push_back(1); }\n"
       "}\n"},
  };
  const auto result = analyze_files(files);
  ASSERT_EQ(result.diags.size(), 1u) << dump(result.diags);
  EXPECT_EQ(result.diags[0].path, "src/sim/b.cpp");
  EXPECT_EQ(result.diags[0].rule, "A1");
}

TEST(AnalyzeA1, LayeringKillsCrossDomainEdges) {
  // A core root calling `reset()` must not resolve into a same-named
  // function in the swarm layer; the call is simply unresolved (and not an
  // allocation), so nothing fires.
  const std::vector<FileInput> files = {
      {"src/sim/a.cpp",
       "namespace rcommit::sim {\n"
       "// RCOMMIT_ANALYZE_ROOT(A1): fixture root\n"
       "void run() { reset(); }\n"
       "}\n"},
      {"src/swarm/b.cpp",
       "#include <vector>\n"
       "namespace rcommit::swarm {\n"
       "std::vector<int> v;\n"
       "void reset() { v.push_back(1); }\n"
       "}\n"},
  };
  const auto result = analyze_files(files);
  EXPECT_TRUE(result.diags.empty()) << dump(result.diags);
}

TEST(AnalyzeA1, UnattachedRootIsADiagnostic) {
  const auto result = analyze_files({FileInput{
      "src/sim/a.cpp",
      "// RCOMMIT_ANALYZE_ROOT(A1): nothing defined below\n"
      "int x = 1;\n"}});
  ASSERT_EQ(result.diags.size(), 1u) << dump(result.diags);
  EXPECT_EQ(result.diags[0].rule, "allow");
  EXPECT_NE(result.diags[0].message.find("attaches to no function"),
            std::string::npos);
}

TEST(AnalyzeA1, RootAttachesAcrossATemplateHeader) {
  const auto result = analyze_files({FileInput{
      "src/sim/a.cpp",
      "#include <vector>\n"
      "namespace rcommit::sim {\n"
      "// RCOMMIT_ANALYZE_ROOT(A1): template root\n"
      "template <typename T>\n"
      "void run(std::vector<T>& v) { v.push_back(T{}); }\n"
      "}\n"}});
  EXPECT_EQ(result.a1_roots, 1);
  ASSERT_EQ(result.diags.size(), 1u) << dump(result.diags);
  EXPECT_EQ(result.diags[0].rule, "A1");
}

TEST(AnalyzeAllow, SuppressionWithoutReasonIsItselfADiagnostic) {
  const auto result = analyze_files({FileInput{
      "src/db/a.cpp",
      "namespace rcommit::db {\n"
      "enum class K { kA, kB };\n"
      "// RCOMMIT_ANALYZE_ALLOW(A4):\n"
      "int f(K k) { switch (k) { case K::kA: return 1; default: return 0; } }\n"
      "}\n"}});
  const auto rules = rules_fired(result.diags);
  EXPECT_TRUE(rules.count("allow")) << dump(result.diags);
  // And the unreasoned annotation does not suppress the finding.
  EXPECT_TRUE(rules.count("A4")) << dump(result.diags);
}

TEST(AnalyzeAllow, StaleSuppressionIsFlagged) {
  const auto result = analyze_files({FileInput{
      "src/db/a.cpp",
      "// RCOMMIT_ANALYZE_ALLOW(A4): nothing on the next line actually fires\n"
      "int x = 1;\n"}});
  ASSERT_EQ(result.diags.size(), 1u) << dump(result.diags);
  EXPECT_EQ(result.diags[0].rule, "allow");
  EXPECT_NE(result.diags[0].message.find("stale"), std::string::npos);
}

TEST(AnalyzeAllow, UnknownRuleNameIsFlagged) {
  const auto result = analyze_files({FileInput{
      "src/db/a.cpp",
      "// RCOMMIT_ANALYZE_ALLOW(A9): no such rule\n"
      "int x = 1;\n"}});
  ASSERT_EQ(result.diags.size(), 1u) << dump(result.diags);
  EXPECT_EQ(result.diags[0].rule, "allow");
  EXPECT_NE(result.diags[0].message.find("unknown rule"), std::string::npos);
}

TEST(AnalyzeOutput, IsDeterministic) {
  const Fixture bad = load_fixture("a1_bad.cpp");
  const auto a = analyze_fixture(bad);
  const auto b = analyze_fixture(bad);
  EXPECT_EQ(dump(a.diags), dump(b.diags));
}

TEST(AnalyzeDiagnostics, FormatIsFileLineRuleMessage) {
  const Diagnostic d{"src/sim/x.cpp", 42, "A1", "boom"};
  EXPECT_EQ(format(d), "src/sim/x.cpp:42: [A1] boom");
}

}  // namespace
}  // namespace rcommit::analyze
