// Crash-at-every-WAL-append torture over the multi-shot engine: a 3-shard ×
// 8-in-flight pipelined workload is crashed at every reachable WAL site with
// every fault kind, and batch recovery must restore a state equivalent to
// the committed-prefix reference — cross-shard atomicity included ("at all
// processors or at no processor").
//
// The tier-1 run sweeps one seed; configuring with -DRCOMMIT_LONG_TESTS=ON
// adds a seed matrix over larger pipelines (CI's swarm-smoke job). Two
// committed corpus entries under tests/corpus_multishot/ replay in tier-1.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "faultinject/multitorture.h"

namespace rcommit::faultinject {
namespace {

namespace fs = std::filesystem;

class MultiShotTortureFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = fs::temp_directory_path() /
           ("rcommit_multishot_torture_test_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter++));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

void expect_clean_sweep(const SweepResult& result) {
  EXPECT_GT(result.sites, 0);
  EXPECT_EQ(result.crash_points, result.sites * 5);  // five WAL fault kinds
  for (const auto& failure : result.failures) {
    ADD_FAILURE() << "recovery not equivalent under plan:\n"
                  << failure.plan.serialize() << "result:\n"
                  << failure.result.serialize();
  }
}

TEST_F(MultiShotTortureFixture, CrashAtEveryAppendRecoversEquivalently) {
  MultiTortureOptions options;  // 3 shards x 3 batches x 8 in flight
  options.scratch_dir = dir_;
  expect_clean_sweep(run_multi_wal_sweep(options, {.threads = 2}));
}

TEST_F(MultiShotTortureFixture, CrashPointIsReproducibleFromSeedAndSite) {
  MultiTortureOptions first = {.seed = 7, .scratch_dir = dir_ / "a"};
  MultiTortureOptions second = {.seed = 7, .scratch_dir = dir_ / "b"};
  // Site 30 lands mid-pipeline: several instances of the in-flight batch are
  // prepared but undecided when the crash fires.
  const FaultPlan plan = FaultPlan::wal_fault_at(30, FaultKind::kCrashAfter, 0);
  const auto baseline = run_multi_crash_point(first, plan);
  EXPECT_EQ(baseline, run_multi_crash_point(second, plan));
  EXPECT_TRUE(baseline.crashed);
  EXPECT_TRUE(baseline.ok()) << baseline.serialize();
  // A mid-pipeline crash leaves multiple in-doubt instances; batch recovery
  // resolved them all (in-doubt => resolved commit + abort counts are the
  // leftovers recovery had to decide, hot instance included).
  EXPECT_GT(baseline.report.resolved_commit + baseline.report.resolved_abort, 1);
}

// --- group-commit + decision-batching site space -----------------------------------

TEST_F(MultiShotTortureFixture, GroupCommitSweepRecoversEquivalently) {
  // Group mode moves every injection site to a group-flush boundary: a
  // crash-before verdict drops a whole buffered group (many records at once),
  // torn verdicts tear mid-group. The equivalence oracle is unchanged — the
  // recovered state must still match the committed-prefix reference.
  MultiTortureOptions options;
  options.group_commit = true;
  options.decision_batch = 4;
  options.scratch_dir = dir_;
  expect_clean_sweep(run_multi_wal_sweep(options, {.threads = 2}));
}

TEST_F(MultiShotTortureFixture, GroupCommitShrinksAndMovesSiteSpace) {
  MultiTortureOptions plain;
  plain.scratch_dir = dir_ / "plain";
  MultiTortureOptions grouped = plain;
  grouped.group_commit = true;
  grouped.decision_batch = 4;
  grouped.scratch_dir = dir_ / "grouped";
  const auto plain_sites = enumerate_multi_sites(plain);
  const auto grouped_sites = enumerate_multi_sites(grouped);
  // Coalescing strictly shrinks the per-append site space down to the
  // boundary flushes; each grouped frame is bigger than any single append.
  ASSERT_GT(grouped_sites.size(), 0u);
  EXPECT_LT(grouped_sites.size(), plain_sites.size());
  size_t max_plain = 0;
  size_t max_grouped = 0;
  for (const auto& site : plain_sites) {
    max_plain = std::max(max_plain, static_cast<size_t>(site.frame_size));
  }
  for (const auto& site : grouped_sites) {
    max_grouped = std::max(max_grouped, static_cast<size_t>(site.frame_size));
  }
  EXPECT_GT(max_grouped, max_plain);
}

TEST_F(MultiShotTortureFixture, GroupBoundaryCrashIsReproducible) {
  MultiTortureOptions first = {.seed = 7, .scratch_dir = dir_ / "a"};
  first.group_commit = true;
  first.decision_batch = 4;
  MultiTortureOptions second = first;
  second.scratch_dir = dir_ / "b";
  // Site 3 is a mid-pipeline group flush: crash-before loses the whole
  // buffered group — every staged append since the previous boundary.
  const FaultPlan plan = FaultPlan::wal_fault_at(3, FaultKind::kCrashBefore, 0);
  const auto baseline = run_multi_crash_point(first, plan);
  EXPECT_EQ(baseline, run_multi_crash_point(second, plan));
  EXPECT_TRUE(baseline.crashed);
  EXPECT_TRUE(baseline.ok()) << baseline.serialize();
}

TEST_F(MultiShotTortureFixture, GroupOptionsRoundTripAndDefaultsAreLegacy) {
  MultiTortureOptions options;
  options.group_commit = true;
  options.decision_batch = 8;
  const auto back = MultiTortureOptions::deserialize(options.serialize());
  EXPECT_EQ(back.serialize(), options.serialize());
  EXPECT_TRUE(back.group_commit);
  EXPECT_EQ(back.decision_batch, 8);
  // A config written before the knobs existed deserializes to them off —
  // which is how the committed corpus entries keep replaying identically.
  std::string legacy;
  for (const auto& line : {std::string("shard_count=3"), std::string("batches=3"),
                           std::string("batch_size=8"), std::string("fanout=2"),
                           std::string("keys_per_shard=4"), std::string("seed=1"),
                           std::string("k=25"), std::string("max_events=200000")}) {
    legacy += line + "\n";
  }
  const auto old = MultiTortureOptions::deserialize(legacy);
  EXPECT_FALSE(old.group_commit);
  EXPECT_EQ(old.decision_batch, 1);
}

TEST_F(MultiShotTortureFixture, EnumerationIsStable) {
  MultiTortureOptions options;
  options.scratch_dir = dir_;
  const auto first = enumerate_multi_sites(options);
  const auto second = enumerate_multi_sites(options);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].site, second[i].site);
    EXPECT_EQ(first[i].wal_name, second[i].wal_name);
    EXPECT_EQ(first[i].record_type, second[i].record_type);
    EXPECT_EQ(first[i].frame_size, second[i].frame_size);
  }
}

TEST_F(MultiShotTortureFixture, OptionsRoundTripThroughDisk) {
  MultiTortureOptions options;
  options.seed = 99;
  options.batches = 5;
  options.batch_size = 11;
  options.fanout = 3;
  const auto back = MultiTortureOptions::deserialize(options.serialize());
  EXPECT_EQ(back.serialize(), options.serialize());
}

TEST_F(MultiShotTortureFixture, ArtifactRoundTripsAndIsDetected) {
  const fs::path artifact_dir = dir_ / "artifact";
  MultiTortureOptions options;
  options.seed = 21;
  FaultPlan plan = FaultPlan::wal_fault_at(4, FaultKind::kPartialFlush);
  CrashPointResult expected;
  expected.crashed = true;
  expected.crash_site = 4;
  expected.sites_seen = 5;
  expected.digest = 0xdeadbeef;
  write_multi_fault_artifact(artifact_dir, {options, plan, expected});
  EXPECT_TRUE(is_multishot_artifact(artifact_dir));
  const MultiFaultArtifact back = load_multi_fault_artifact(artifact_dir);
  EXPECT_EQ(back.options.serialize(), options.serialize());
  EXPECT_EQ(back.plan, plan);
  EXPECT_EQ(back.expected, expected);
}

TEST_F(MultiShotTortureFixture, SerialArtifactIsNotDetectedAsMultishot) {
  const fs::path artifact_dir = dir_ / "serial-artifact";
  TortureOptions options;
  write_fault_artifact(artifact_dir,
                       {options, FaultPlan::none(), CrashPointResult{}});
  EXPECT_FALSE(is_multishot_artifact(artifact_dir));
}

TEST_F(MultiShotTortureFixture, CorpusEntriesReplayIdentically) {
  const fs::path corpus(RCOMMIT_MULTISHOT_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(corpus)) << corpus;
  int replayed = 0;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    if (!entry.is_directory()) continue;
    SCOPED_TRACE(entry.path().filename().string());
    ASSERT_TRUE(is_multishot_artifact(entry.path()));
    const MultiFaultArtifact artifact = load_multi_fault_artifact(entry.path());
    MultiTortureOptions options = artifact.options;
    options.scratch_dir = dir_ / ("corpus-" + entry.path().filename().string());
    const CrashPointResult result = run_multi_crash_point(options, artifact.plan);
    EXPECT_EQ(result, artifact.expected)
        << "expected:\n"
        << artifact.expected.serialize() << "got:\n"
        << result.serialize();
    ++replayed;
  }
  EXPECT_GE(replayed, 4) << "multishot corpus at " << corpus
                         << " must hold at least four committed entries "
                            "(two serial-era, two group-commit)";
}

#ifdef RCOMMIT_LONG_TESTS
TEST_F(MultiShotTortureFixture, SeedMatrixSweep) {
  // The long-test matrix: more seeds, deeper pipelines, full fan-out.
  for (const uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    MultiTortureOptions options;
    options.seed = seed;
    options.batches = 4;
    options.batch_size = 10;
    options.fanout = 3;
    options.scratch_dir = dir_ / ("seed-" + std::to_string(seed));
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_clean_sweep(run_multi_wal_sweep(options, {.threads = 4}));
  }
}
TEST_F(MultiShotTortureFixture, GroupCommitSeedMatrixSweep) {
  // The grouped site space under the same seed matrix: fewer sites per run
  // (boundary flushes only), each crash dropping far more buffered state.
  for (const uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    MultiTortureOptions options;
    options.seed = seed;
    options.batches = 4;
    options.batch_size = 10;
    options.fanout = 3;
    options.group_commit = true;
    options.decision_batch = 5;
    options.scratch_dir = dir_ / ("gseed-" + std::to_string(seed));
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_clean_sweep(run_multi_wal_sweep(options, {.threads = 4}));
  }
}
#endif  // RCOMMIT_LONG_TESTS

}  // namespace
}  // namespace rcommit::faultinject
