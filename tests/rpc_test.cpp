// Tests for the message-driven shard service: RPC payload round-trips and
// end-to-end distributed transactions where every byte — including the
// commit protocol's agreement rounds — crosses the network.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>

#include "db/kv.h"
#include "db/rpc.h"
#include "transport/network.h"
#include "transport/wire.h"

namespace rcommit::db {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;
using transport::WireRegistry;

class RpcFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = fs::temp_directory_path() /
           ("rcommit_rpc_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(dir_);
    register_db_wire_types();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] fs::path wal_path(int shard) const {
    return dir_ / ("shard-" + std::to_string(shard) + ".wal");
  }

  fs::path dir_;
};

// --- payload round-trips -----------------------------------------------------------

TEST_F(RpcFixture, PrepareRequestRoundTrip) {
  const PrepareRequest request(42, 7, {0, 1, 2}, {{"k1", "v1"}, {"k2", "v2"}});
  const auto decoded =
      WireRegistry::instance().decode(WireRegistry::instance().encode(request));
  const auto* back = sim::msg_cast<PrepareRequest>(decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->txn(), 42);
  EXPECT_EQ(back->client(), 7);
  EXPECT_EQ(back->participants(), (std::vector<ProcId>{0, 1, 2}));
  ASSERT_EQ(back->writes().size(), 2u);
  EXPECT_EQ(back->writes()[1].key, "k2");
}

TEST_F(RpcFixture, SessionMsgRoundTripWithNestedPayload) {
  // Tunnel a real piggybacked agreement message.
  const auto inner = sim::make_message<protocol::PiggybackedMsg>(
      std::vector<uint8_t>{1, 0, 1},
      sim::make_message<protocol::AgreementR1>(2, 1));
  const SessionMsg tunnel(9, 1, WireRegistry::instance().encode(*inner));
  const auto decoded =
      WireRegistry::instance().decode(WireRegistry::instance().encode(tunnel));
  const auto* back = sim::msg_cast<SessionMsg>(decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->txn(), 9);
  EXPECT_EQ(back->from_rank(), 1);
  const auto inner_back = WireRegistry::instance().decode(back->inner());
  const auto* pb = sim::msg_cast<protocol::PiggybackedMsg>(inner_back);
  ASSERT_NE(pb, nullptr);
  EXPECT_NE(sim::msg_cast<protocol::AgreementR1>(pb->inner()), nullptr);
}

TEST_F(RpcFixture, OutcomeAndGetRoundTrips) {
  const TxnOutcomeMsg outcome(5, 1);
  const auto outcome_back_ref =
      WireRegistry::instance().decode(WireRegistry::instance().encode(outcome));
  const auto* outcome_back = sim::msg_cast<TxnOutcomeMsg>(outcome_back_ref);
  ASSERT_NE(outcome_back, nullptr);
  EXPECT_TRUE(outcome_back->commit());

  const GetRequest get(3, "some-key");
  const auto get_back_ref =
      WireRegistry::instance().decode(WireRegistry::instance().encode(get));
  const auto* get_back = sim::msg_cast<GetRequest>(get_back_ref);
  ASSERT_NE(get_back, nullptr);
  EXPECT_EQ(get_back->key(), "some-key");

  const GetResponse response(3, true, "val");
  const auto resp_back_ref =
      WireRegistry::instance().decode(WireRegistry::instance().encode(response));
  const auto* resp_back = sim::msg_cast<GetResponse>(resp_back_ref);
  ASSERT_NE(resp_back, nullptr);
  EXPECT_TRUE(resp_back->found());
  EXPECT_EQ(resp_back->value(), "val");
}

// --- end-to-end --------------------------------------------------------------------

TEST_F(RpcFixture, DistributedCommitThroughShardServers) {
  constexpr int kShards = 3;
  const ProcId kClient = kShards;
  transport::InMemoryNetwork net(kShards + 1, /*seed=*/5,
                                 {.min_delay = 20us, .max_delay = 200us});

  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<ShardServer>> servers;
  for (int i = 0; i < kShards; ++i) {
    stores.push_back(std::make_unique<KvStore>(wal_path(i)));
    servers.push_back(std::make_unique<ShardServer>(
        ShardServer::Options{.node_id = i, .seed = 100 + static_cast<uint64_t>(i)},
        *stores.back(), net));
  }
  net.start();
  for (auto& server : servers) server->start();

  DbTxnClient client(kClient, net);
  const auto outcome = client.execute(
      1, {{0, {{"a", "1"}}}, {1, {{"b", "2"}}}, {2, {{"c", "3"}}}}, 5000ms);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, Decision::kCommit);

  // Reads go over the wire too.
  EXPECT_EQ(client.get(0, "a", 2000ms), "1");
  EXPECT_EQ(client.get(1, "b", 2000ms), "2");
  EXPECT_EQ(client.get(2, "c", 2000ms), "3");
  EXPECT_EQ(client.get(2, "missing", 500ms), std::nullopt);

  for (auto& server : servers) server->stop();
  net.stop();
}

TEST_F(RpcFixture, LockConflictAbortsThroughServers) {
  constexpr int kShards = 2;
  const ProcId kClient = kShards;
  transport::InMemoryNetwork net(kShards + 1, 6, {.min_delay = 20us, .max_delay = 150us});

  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<ShardServer>> servers;
  for (int i = 0; i < kShards; ++i) {
    stores.push_back(std::make_unique<KvStore>(wal_path(i)));
    servers.push_back(std::make_unique<ShardServer>(
        ShardServer::Options{.node_id = i, .seed = 200 + static_cast<uint64_t>(i)},
        *stores.back(), net));
  }
  // A stuck transaction holds "hot" on shard 1 before the servers start.
  ASSERT_TRUE(stores[1]->prepare(999, {{"hot", "held"}}));

  net.start();
  for (auto& server : servers) server->start();

  DbTxnClient client(kClient, net);
  const auto outcome =
      client.execute(2, {{0, {{"cold", "x"}}}, {1, {{"hot", "y"}}}}, 5000ms);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, Decision::kAbort);
  EXPECT_EQ(client.get(0, "cold", 1000ms), std::nullopt);

  for (auto& server : servers) server->stop();
  net.stop();
}

TEST_F(RpcFixture, SequentialTransactionsThroughServers) {
  constexpr int kShards = 2;
  const ProcId kClient = kShards;
  transport::InMemoryNetwork net(kShards + 1, 7, {.min_delay = 10us, .max_delay = 100us});

  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<ShardServer>> servers;
  for (int i = 0; i < kShards; ++i) {
    stores.push_back(std::make_unique<KvStore>(wal_path(i)));
    servers.push_back(std::make_unique<ShardServer>(
        ShardServer::Options{.node_id = i, .seed = 300 + static_cast<uint64_t>(i)},
        *stores.back(), net));
  }
  net.start();
  for (auto& server : servers) server->start();

  DbTxnClient client(kClient, net);
  for (TxnId txn = 1; txn <= 5; ++txn) {
    const auto outcome = client.execute(
        txn,
        {{0, {{"seq", std::to_string(txn)}}}, {1, {{"seq", std::to_string(txn)}}}},
        5000ms);
    ASSERT_TRUE(outcome.has_value()) << "txn " << txn;
    EXPECT_EQ(*outcome, Decision::kCommit) << "txn " << txn;
  }
  EXPECT_EQ(client.get(0, "seq", 1000ms), "5");
  EXPECT_EQ(client.get(1, "seq", 1000ms), "5");
  EXPECT_GE(servers[0]->sessions_completed(), 5);

  for (auto& server : servers) server->stop();
  net.stop();
}

}  // namespace
}  // namespace rcommit::db
