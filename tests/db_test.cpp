// Tests for the database substrate: WAL framing and recovery, lock manager,
// KV two-phase lifecycle, crash recovery with in-doubt transactions, and
// end-to-end distributed transactions over the threaded commit protocol.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "db/kv.h"
#include "db/locks.h"
#include "db/txn.h"
#include "db/wal.h"

namespace rcommit::db {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("rcommit_db_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

// --- WAL -------------------------------------------------------------------------

TEST(Wal, AppendReplayRoundTrip) {
  TempDir dir;
  const auto wal_path = dir.path() / "test.wal";
  {
    WriteAheadLog wal(wal_path);
    wal.append({WalRecordType::kBegin, 1, "", ""});
    wal.append({WalRecordType::kWrite, 1, "alpha", "1"});
    wal.append({WalRecordType::kPrepared, 1, "", ""});
    wal.append({WalRecordType::kCommit, 1, "", ""});
  }
  WriteAheadLog wal(wal_path);
  const auto records = wal.replay();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].type, WalRecordType::kBegin);
  EXPECT_EQ(records[1].key, "alpha");
  EXPECT_EQ(records[1].value, "1");
  EXPECT_EQ(records[3].type, WalRecordType::kCommit);
}

TEST(Wal, ReplayEmptyLog) {
  TempDir dir;
  WriteAheadLog wal(dir.path() / "empty.wal");
  EXPECT_TRUE(wal.replay().empty());
}

TEST(Wal, TornFinalRecordIsDropped) {
  TempDir dir;
  const auto wal_path = dir.path() / "torn.wal";
  {
    WriteAheadLog wal(wal_path);
    wal.append({WalRecordType::kBegin, 1, "", ""});
    wal.append({WalRecordType::kWrite, 1, "k", "v"});
  }
  // Tear off the last 3 bytes, as a crash mid-append would.
  const auto size = fs::file_size(wal_path);
  fs::resize_file(wal_path, size - 3);
  WriteAheadLog wal(wal_path);
  const auto records = wal.replay();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, WalRecordType::kBegin);
}

TEST(Wal, CorruptRecordStopsReplay) {
  TempDir dir;
  const auto wal_path = dir.path() / "corrupt.wal";
  {
    WriteAheadLog wal(wal_path);
    wal.append({WalRecordType::kBegin, 1, "", ""});
    wal.append({WalRecordType::kWrite, 1, "key", "value"});
    wal.append({WalRecordType::kCommit, 1, "", ""});
  }
  // Flip one byte inside the second record's body.
  std::fstream file(wal_path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(20);
  char byte;
  file.seekg(20);
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(20);
  file.write(&byte, 1);
  file.close();

  WriteAheadLog wal(wal_path);
  // Replay keeps everything before the corruption; the exact count depends
  // on which frame byte 20 lands in, but it must be less than 3 and the
  // surviving prefix must be intact.
  const auto records = wal.replay();
  EXPECT_LT(records.size(), 3u);
  if (!records.empty()) {
    EXPECT_EQ(records[0].type, WalRecordType::kBegin);
  }
}

// --- WAL group commit ------------------------------------------------------------

/// Records every on_append consult and executes a scripted disposition for
/// the Nth physical write (kClean for all others).
class CountingHook : public WalFaultHook {
 public:
  WalAppendFault on_append(const std::filesystem::path&,
                           std::span<const uint8_t> frame) override {
    frame_sizes.push_back(frame.size());
    WalAppendFault fault;
    if (static_cast<int64_t>(frame_sizes.size()) - 1 == fault_at) {
      fault = scripted;
      fault.site = fault_at;
    }
    return fault;
  }

  std::vector<size_t> frame_sizes;
  int64_t fault_at = -1;  ///< 0-based physical-write index to fire at
  WalAppendFault scripted;
};

TEST(WalGroup, CoalescesAppendsIntoOneFlush) {
  TempDir dir;
  const auto wal_path = dir.path() / "group.wal";
  {
    WriteAheadLog wal(wal_path);
    wal.begin_group();
    wal.append({WalRecordType::kBegin, 1, "", ""});
    wal.append({WalRecordType::kWrite, 1, "k", "v"});
    wal.append({WalRecordType::kPrepared, 1, "", ""});
    EXPECT_EQ(wal.stats().flushes, 0);  // still buffered
    wal.commit_group();
    EXPECT_EQ(wal.stats().records_appended, 3);
    EXPECT_EQ(wal.stats().flushes, 1);
    EXPECT_DOUBLE_EQ(wal.stats().records_per_flush(), 3.0);
    wal.end_group();
    EXPECT_EQ(wal.stats().flushes, 1);  // empty pending: end_group is a no-op
  }
  WriteAheadLog wal(wal_path);
  ASSERT_EQ(wal.replay().size(), 3u);
}

TEST(WalGroup, AutoFlushBoundaryIsDeterministic) {
  TempDir dir;
  WriteAheadLog wal(dir.path() / "auto.wal");
  WalGroupLimits limits;
  limits.max_records = 2;
  wal.begin_group(limits);
  for (int i = 0; i < 5; ++i) {
    wal.append({WalRecordType::kWrite, 1, "k" + std::to_string(i), "v"});
  }
  EXPECT_EQ(wal.stats().flushes, 2);  // auto-flushed after records 2 and 4
  wal.end_group();
  EXPECT_EQ(wal.stats().flushes, 3);  // the trailing single record
  ASSERT_EQ(wal.replay().size(), 5u);
}

TEST(WalGroup, HookConsultedOncePerGroupWithWholeGroupFrame) {
  TempDir dir;
  WriteAheadLog wal(dir.path() / "hook.wal");
  CountingHook hook;
  wal.set_fault_hook(&hook);
  wal.append({WalRecordType::kBegin, 1, "", ""});  // ungrouped: one consult
  ASSERT_EQ(hook.frame_sizes.size(), 1u);
  const size_t single = hook.frame_sizes[0];

  wal.begin_group();
  wal.append({WalRecordType::kBegin, 2, "", ""});
  wal.append({WalRecordType::kBegin, 3, "", ""});
  ASSERT_EQ(hook.frame_sizes.size(), 1u);  // nothing consulted while buffered
  wal.commit_group();
  ASSERT_EQ(hook.frame_sizes.size(), 2u);
  // The hook saw the concatenation of both frames, not two separate frames.
  EXPECT_EQ(hook.frame_sizes[1], 2 * single);
}

TEST(WalGroup, CrashBeforeLosesWholeBufferedGroup) {
  TempDir dir;
  const auto wal_path = dir.path() / "crash.wal";
  {
    WriteAheadLog wal(wal_path);
    wal.begin_group();
    wal.append({WalRecordType::kBegin, 1, "", ""});
    wal.commit_group();  // group 1 reaches the file

    CountingHook hook;
    hook.fault_at = 0;  // first physical write this hook sees
    hook.scripted.kind = WalAppendFault::Kind::kCrashBefore;
    wal.set_fault_hook(&hook);
    wal.append({WalRecordType::kWrite, 2, "k", "v"});
    wal.append({WalRecordType::kPrepared, 2, "", ""});
    EXPECT_THROW(wal.commit_group(), CrashInjected);
    // The crashed group's bytes are gone: a later flush must not resurrect
    // them (that would model a dead process writing).
    wal.set_fault_hook(nullptr);
    wal.commit_group();
    EXPECT_EQ(wal.stats().flushes, 1);  // only group 1 ever hit the file
  }
  WriteAheadLog wal(wal_path);
  const auto records = wal.replay();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].txn_id, 1);
}

TEST(WalGroup, TornGroupTailIsTruncatedOnReopen) {
  TempDir dir;
  const auto wal_path = dir.path() / "torn_group.wal";
  size_t single_frame = 0;
  {
    WriteAheadLog wal(wal_path);
    CountingHook probe;
    wal.set_fault_hook(&probe);
    wal.append({WalRecordType::kBegin, 1, "", ""});
    single_frame = probe.frame_sizes[0];

    CountingHook hook;
    hook.fault_at = 0;
    hook.scripted.kind = WalAppendFault::Kind::kTorn;
    // Keep the first frame of the group plus half of the second: replay must
    // recover exactly one record and the ctor must truncate the ragged tail.
    hook.scripted.keep_bytes = single_frame + single_frame / 2;
    wal.set_fault_hook(&hook);
    wal.begin_group();
    wal.append({WalRecordType::kBegin, 2, "", ""});
    wal.append({WalRecordType::kBegin, 3, "", ""});
    EXPECT_THROW(wal.commit_group(), CrashInjected);
  }
  WriteAheadLog wal(wal_path);
  const auto records = wal.replay();
  ASSERT_EQ(records.size(), 2u);  // txn 1, then the intact prefix of the group
  EXPECT_EQ(records[1].txn_id, 2);
  // The ctor truncated the torn half-frame, so appends land on a clean tail.
  wal.append({WalRecordType::kBegin, 4, "", ""});
  ASSERT_EQ(wal.replay().size(), 3u);
  EXPECT_EQ(wal.replay()[2].txn_id, 4);
}

TEST(WalGroup, DestructionDropsPendingGroupUnflushed) {
  TempDir dir;
  const auto wal_path = dir.path() / "drop.wal";
  {
    WriteAheadLog wal(wal_path);
    wal.begin_group();
    wal.append({WalRecordType::kBegin, 1, "", ""});
    // No commit_group: the owner "crashed" with the group buffered.
  }
  WriteAheadLog wal(wal_path);
  EXPECT_TRUE(wal.replay().empty());
}

TEST(WalGroup, TxnListRoundTrip) {
  const std::vector<int64_t> ids = {7, 40000000001, 3};
  EXPECT_EQ(decode_txn_list(encode_txn_list(ids)), ids);
  EXPECT_TRUE(decode_txn_list("").empty());
  EXPECT_EQ(encode_txn_list({}), "");
}

TEST(WalGroup, BatchSealRecordRoundTrips) {
  TempDir dir;
  const auto wal_path = dir.path() / "seal.wal";
  {
    WriteAheadLog wal(wal_path);
    wal.append({WalRecordType::kBatchSeal, 42, "", encode_txn_list({42, 43})});
  }
  WriteAheadLog wal(wal_path);
  const auto records = wal.replay();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, WalRecordType::kBatchSeal);
  EXPECT_EQ(records[0].txn_id, 42);
  EXPECT_EQ(decode_txn_list(records[0].value), (std::vector<int64_t>{42, 43}));
}

// --- locks -----------------------------------------------------------------------

TEST(Locks, ExclusiveAcquisition) {
  LockManager locks;
  EXPECT_TRUE(locks.try_lock("a", 1));
  EXPECT_FALSE(locks.try_lock("a", 2));
  EXPECT_EQ(locks.holder("a"), 1);
}

TEST(Locks, ReentrantForSameTxn) {
  LockManager locks;
  EXPECT_TRUE(locks.try_lock("a", 1));
  EXPECT_TRUE(locks.try_lock("a", 1));
}

TEST(Locks, UnlockAllReleasesEverything) {
  LockManager locks;
  EXPECT_TRUE(locks.try_lock("a", 1));
  EXPECT_TRUE(locks.try_lock("b", 1));
  EXPECT_TRUE(locks.try_lock("c", 2));
  locks.unlock_all(1);
  EXPECT_EQ(locks.holder("a"), std::nullopt);
  EXPECT_EQ(locks.holder("b"), std::nullopt);
  EXPECT_EQ(locks.holder("c"), 2);
  EXPECT_TRUE(locks.try_lock("a", 3));
}

TEST(Locks, UnlockAllUnknownTxnIsNoop) {
  LockManager locks;
  locks.unlock_all(99);
  EXPECT_EQ(locks.locked_count(), 0u);
}

// --- KV store ---------------------------------------------------------------------

TEST(Kv, PrepareCommitInstallsWrites) {
  TempDir dir;
  KvStore store(dir.path() / "kv.wal");
  ASSERT_TRUE(store.prepare(1, {{"x", "10"}, {"y", "20"}}));
  EXPECT_EQ(store.get("x"), std::nullopt);  // staged, not visible
  store.commit(1);
  EXPECT_EQ(store.get("x"), "10");
  EXPECT_EQ(store.get("y"), "20");
}

TEST(Kv, AbortDiscardsWrites) {
  TempDir dir;
  KvStore store(dir.path() / "kv.wal");
  ASSERT_TRUE(store.prepare(1, {{"x", "10"}}));
  store.abort(1);
  EXPECT_EQ(store.get("x"), std::nullopt);
  // Locks released: another transaction can take the key.
  ASSERT_TRUE(store.prepare(2, {{"x", "11"}}));
  store.commit(2);
  EXPECT_EQ(store.get("x"), "11");
}

TEST(Kv, ConflictingPrepareVotesAbort) {
  TempDir dir;
  KvStore store(dir.path() / "kv.wal");
  ASSERT_TRUE(store.prepare(1, {{"x", "1"}}));
  EXPECT_FALSE(store.prepare(2, {{"x", "2"}}));  // lock conflict -> vote abort
  // The failed prepare must not retain partial locks.
  EXPECT_FALSE(store.prepare(3, {{"y", "3"}, {"x", "3"}}));
  ASSERT_TRUE(store.prepare(4, {{"y", "4"}}));
  store.commit(1);
  store.commit(4);
  EXPECT_EQ(store.get("x"), "1");
  EXPECT_EQ(store.get("y"), "4");
}

TEST(Kv, CommitOfUnpreparedThrows) {
  TempDir dir;
  KvStore store(dir.path() / "kv.wal");
  EXPECT_THROW(store.commit(42), CheckFailure);
}

TEST(Kv, RecoveryReappliesCommitted) {
  TempDir dir;
  const auto wal_path = dir.path() / "kv.wal";
  {
    KvStore store(wal_path);
    ASSERT_TRUE(store.prepare(1, {{"a", "1"}}));
    store.commit(1);
    ASSERT_TRUE(store.prepare(2, {{"b", "2"}}));
    store.abort(2);
  }
  KvStore recovered(wal_path);
  EXPECT_EQ(recovered.get("a"), "1");
  EXPECT_EQ(recovered.get("b"), std::nullopt);
  EXPECT_TRUE(recovered.in_doubt().empty());
}

TEST(Kv, RecoverySurfacesInDoubtTransactions) {
  TempDir dir;
  const auto wal_path = dir.path() / "kv.wal";
  {
    KvStore store(wal_path);
    ASSERT_TRUE(store.prepare(7, {{"k", "v"}}));
    // Crash here: prepared, no outcome.
  }
  KvStore recovered(wal_path);
  const auto doubts = recovered.in_doubt();
  ASSERT_EQ(doubts.size(), 1u);
  EXPECT_EQ(doubts[0], 7);
  EXPECT_EQ(recovered.get("k"), std::nullopt);
  // The in-doubt transaction still holds its locks.
  EXPECT_FALSE(recovered.prepare(8, {{"k", "other"}}));
  // Resolving it releases them.
  recovered.commit(7);
  EXPECT_EQ(recovered.get("k"), "v");
  EXPECT_TRUE(recovered.prepare(9, {{"k", "post"}}));
}

TEST(Kv, UnpreparedLeftoversDroppedOnRecovery) {
  TempDir dir;
  const auto wal_path = dir.path() / "kv.wal";
  {
    // Simulate a crash between Begin/Write and Prepared by writing the WAL
    // records directly.
    WriteAheadLog wal(wal_path);
    wal.append({WalRecordType::kBegin, 5, "", ""});
    wal.append({WalRecordType::kWrite, 5, "z", "99"});
  }
  KvStore recovered(wal_path);
  EXPECT_TRUE(recovered.in_doubt().empty());
  EXPECT_EQ(recovered.get("z"), std::nullopt);
  EXPECT_TRUE(recovered.prepare(6, {{"z", "1"}}));  // keys unlocked
}

TEST(Kv, GroupModeCoalescesTxnAppendsAndRecovers) {
  TempDir dir;
  const auto wal_path = dir.path() / "kv.wal";
  {
    KvStore store(wal_path);
    store.wal_begin_group();
    ASSERT_TRUE(store.prepare(1, {{"a", "1"}}));
    store.commit(1);
    ASSERT_TRUE(store.prepare(2, {{"b", "2"}}));
    store.commit(2);
    EXPECT_EQ(store.wal_stats().flushes, 0);  // all buffered
    store.wal_commit_group();
    EXPECT_EQ(store.wal_stats().flushes, 1);
    EXPECT_GT(store.wal_stats().records_per_flush(), 5.0);
  }
  KvStore recovered(wal_path);
  EXPECT_EQ(recovered.get("a"), "1");
  EXPECT_EQ(recovered.get("b"), "2");
  EXPECT_TRUE(recovered.in_doubt().empty());
}

TEST(Kv, BatchSealIsInvisibleToRecovery) {
  TempDir dir;
  const auto wal_path = dir.path() / "kv.wal";
  {
    KvStore store(wal_path);
    ASSERT_TRUE(store.prepare(1, {{"a", "1"}}));
    store.seal_batch(1, {1, 2});
    store.commit(1);
  }
  KvStore recovered(wal_path);
  EXPECT_EQ(recovered.get("a"), "1");
  EXPECT_TRUE(recovered.in_doubt().empty());
}

TEST(Kv, CheckpointFlushesAndReopensGroup) {
  TempDir dir;
  const auto wal_path = dir.path() / "kv.wal";
  KvStore store(wal_path);
  store.wal_begin_group();
  ASSERT_TRUE(store.prepare(1, {{"a", "1"}}));
  store.commit(1);
  store.checkpoint();  // must flush the pending group, not drop it
  EXPECT_TRUE(store.wal_group_open());  // and group mode survives
  ASSERT_TRUE(store.prepare(2, {{"b", "2"}}));
  store.commit(2);
  store.wal_commit_group();
  KvStore recovered(wal_path);
  EXPECT_EQ(recovered.get("a"), "1");
  EXPECT_EQ(recovered.get("b"), "2");
}

// --- checkpoint / compaction -------------------------------------------------------

TEST(Kv, CheckpointShrinksLogAndPreservesState) {
  TempDir dir;
  const auto wal_path = dir.path() / "kv.wal";
  KvStore store(wal_path);
  // Churn: many transactions against few keys.
  for (TxnId txn = 1; txn <= 50; ++txn) {
    ASSERT_TRUE(store.prepare(txn, {{"a", std::to_string(txn)},
                                    {"b", std::to_string(txn * 2)}}));
    store.commit(txn);
  }
  const auto before = fs::file_size(wal_path);
  store.checkpoint();
  const auto after = fs::file_size(wal_path);
  EXPECT_LT(after, before / 4) << "snapshot should collapse 50 txns to 2 keys";
  EXPECT_EQ(store.get("a"), "50");
  EXPECT_EQ(store.get("b"), "100");
  // The store keeps working post-checkpoint.
  ASSERT_TRUE(store.prepare(51, {{"c", "new"}}));
  store.commit(51);
  EXPECT_EQ(store.get("c"), "new");
}

TEST(Kv, RecoveryAfterCheckpointRestoresEverything) {
  TempDir dir;
  const auto wal_path = dir.path() / "kv.wal";
  {
    KvStore store(wal_path);
    for (TxnId txn = 1; txn <= 10; ++txn) {
      ASSERT_TRUE(store.prepare(txn, {{"k" + std::to_string(txn), "v"}}));
      store.commit(txn);
    }
    ASSERT_TRUE(store.prepare(99, {{"pending", "?"}}));  // stays in doubt
    store.checkpoint();
  }
  KvStore recovered(wal_path);
  for (TxnId txn = 1; txn <= 10; ++txn) {
    EXPECT_EQ(recovered.get("k" + std::to_string(txn)), "v");
  }
  // The in-doubt transaction survived the compaction, locks included.
  ASSERT_EQ(recovered.in_doubt(), std::vector<TxnId>{99});
  EXPECT_FALSE(recovered.prepare(100, {{"pending", "other"}}));
  recovered.commit(99);
  EXPECT_EQ(recovered.get("pending"), "?");
}

TEST(Kv, CheckpointOnEmptyStoreIsHarmless) {
  TempDir dir;
  KvStore store(dir.path() / "kv.wal");
  store.checkpoint();
  EXPECT_EQ(store.size(), 0u);
  ASSERT_TRUE(store.prepare(1, {{"x", "1"}}));
  store.commit(1);
  EXPECT_EQ(store.get("x"), "1");
}

TEST(Kv, RepeatedCheckpointsAreIdempotent) {
  TempDir dir;
  const auto wal_path = dir.path() / "kv.wal";
  KvStore store(wal_path);
  ASSERT_TRUE(store.prepare(1, {{"x", "1"}}));
  store.commit(1);
  store.checkpoint();
  const auto size_once = fs::file_size(wal_path);
  store.checkpoint();
  EXPECT_EQ(fs::file_size(wal_path), size_once);
  EXPECT_EQ(store.get("x"), "1");
}

// --- distributed transactions -----------------------------------------------------

TEST(DistributedDb, MultiShardCommit) {
  TempDir dir;
  DistributedDb::Options options;
  options.shard_count = 3;
  options.data_dir = dir.path();
  options.seed = 21;
  options.network = {.min_delay = std::chrono::microseconds(20),
                     .max_delay = std::chrono::microseconds(200)};
  DistributedDb database(options);

  const auto outcome = database.execute({
      {0, {{"acct:alice", "50"}}},
      {1, {{"acct:bob", "150"}}},
      {2, {{"ledger:tx1", "alice->bob:50"}}},
  });
  ASSERT_TRUE(outcome.decided);
  EXPECT_EQ(outcome.decision, Decision::kCommit);
  EXPECT_EQ(database.get(0, "acct:alice"), "50");
  EXPECT_EQ(database.get(1, "acct:bob"), "150");
  EXPECT_EQ(database.get(2, "ledger:tx1"), "alice->bob:50");
}

TEST(DistributedDb, LockConflictAbortsEverywhere) {
  TempDir dir;
  DistributedDb::Options options;
  options.shard_count = 2;
  options.data_dir = dir.path();
  options.seed = 22;
  DistributedDb database(options);

  // A stuck transaction holds a lock on shard 1 (prepare without outcome).
  ASSERT_TRUE(database.shard(1).prepare(999, {{"hot", "held"}}));

  const auto outcome = database.execute({
      {0, {{"cold", "1"}}},
      {1, {{"hot", "2"}}},  // conflicts -> shard 1 votes abort
  });
  ASSERT_TRUE(outcome.decided);
  EXPECT_EQ(outcome.decision, Decision::kAbort);
  EXPECT_EQ(database.get(0, "cold"), std::nullopt);
  EXPECT_EQ(database.get(1, "hot"), std::nullopt);
}

TEST(DistributedDb, SingleShardFastPath) {
  TempDir dir;
  DistributedDb::Options options;
  options.shard_count = 2;
  options.data_dir = dir.path();
  DistributedDb database(options);
  const auto outcome = database.execute({{0, {{"solo", "1"}}}});
  ASSERT_TRUE(outcome.decided);
  EXPECT_EQ(outcome.decision, Decision::kCommit);
  EXPECT_EQ(database.get(0, "solo"), "1");
}

TEST(DistributedDb, SameShardMultiAccountTransaction) {
  // Two writes on one shard travel as a single participant entry (the
  // single-shard fast path); regression for the silently-dropped duplicate
  // map key that once broke conservation in the bank example.
  TempDir dir;
  DistributedDb::Options options;
  options.shard_count = 2;
  options.data_dir = dir.path();
  DistributedDb database(options);
  std::map<int32_t, std::vector<KvWrite>> writes;
  writes[0].push_back({"alice", "900"});
  writes[0].push_back({"bob", "1100"});
  const auto outcome = database.execute(writes);
  ASSERT_TRUE(outcome.decided);
  EXPECT_EQ(outcome.decision, Decision::kCommit);
  EXPECT_EQ(database.get(0, "alice"), "900");
  EXPECT_EQ(database.get(0, "bob"), "1100");
}

TEST(DistributedDb, MixedSameAndCrossShardWrites) {
  TempDir dir;
  DistributedDb::Options options;
  options.shard_count = 2;
  options.data_dir = dir.path();
  options.seed = 77;
  DistributedDb database(options);
  std::map<int32_t, std::vector<KvWrite>> writes;
  writes[0].push_back({"a", "1"});
  writes[0].push_back({"b", "2"});
  writes[1].push_back({"c", "3"});
  const auto outcome = database.execute(writes);
  ASSERT_TRUE(outcome.decided);
  EXPECT_EQ(outcome.decision, Decision::kCommit);
  EXPECT_EQ(database.get(0, "a"), "1");
  EXPECT_EQ(database.get(0, "b"), "2");
  EXPECT_EQ(database.get(1, "c"), "3");
}

TEST(DistributedDb, SequentialTransactionsReuseKeys) {
  TempDir dir;
  DistributedDb::Options options;
  options.shard_count = 2;
  options.data_dir = dir.path();
  options.seed = 23;
  DistributedDb database(options);
  for (int round = 0; round < 3; ++round) {
    const auto outcome = database.execute({
        {0, {{"counter", std::to_string(round)}}},
        {1, {{"mirror", std::to_string(round)}}},
    });
    ASSERT_TRUE(outcome.decided) << "round " << round;
    ASSERT_EQ(outcome.decision, Decision::kCommit) << "round " << round;
  }
  EXPECT_EQ(database.get(0, "counter"), "2");
  EXPECT_EQ(database.get(1, "mirror"), "2");
}

TEST(DistributedDb, SurvivesRestartAcrossTransactions) {
  TempDir dir;
  {
    DistributedDb::Options options;
    options.shard_count = 2;
    options.data_dir = dir.path();
    DistributedDb database(options);
    ASSERT_EQ(database
                  .execute({{0, {{"persist", "yes"}}}, {1, {{"persist", "also"}}}})
                  .decision,
              Decision::kCommit);
  }
  // "Restart": a new DistributedDb over the same directory recovers state.
  DistributedDb::Options options;
  options.shard_count = 2;
  options.data_dir = dir.path();
  DistributedDb database(options);
  EXPECT_EQ(database.get(0, "persist"), "yes");
  EXPECT_EQ(database.get(1, "persist"), "also");
}

}  // namespace
}  // namespace rcommit::db
