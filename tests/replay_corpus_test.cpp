// Replays every recorded schedule in tests/corpus/ and tests/corpus_search/
// against the current simulator and re-checks the paper's correctness
// conditions. tests/corpus/ holds interesting-but-clean runs (near misses)
// recorded by tools/corpus_gen; tests/corpus_search/ is a distilled
// coverage-search corpus (one schedule per novel behavior fingerprint,
// saved by `swarm_cli --search --corpus-out`). A divergence here means
// protocol-side behaviour changed since the recording, a gate failure means
// a regression slipped in, and a fingerprint mismatch means the coverage
// digest drifted (docs/coverage-search.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "sim/replay.h"
#include "swarm/artifacts.h"
#include "swarm/coverage.h"
#include "swarm/matrix.h"
#include "swarm/runner.h"

namespace rcommit::swarm {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> corpus_entries() {
  std::vector<std::string> dirs;
  for (const auto& entry : fs::directory_iterator(RCOMMIT_CORPUS_DIR)) {
    if (entry.is_directory() && fs::exists(entry.path() / "schedule.txt")) {
      dirs.push_back(entry.path().string());
    }
  }
  std::sort(dirs.begin(), dirs.end());
  return dirs;
}

TEST(ReplayCorpus, CorpusIsNotEmpty) {
  EXPECT_GE(corpus_entries().size(), 2u)
      << "expected recorded schedules under " << RCOMMIT_CORPUS_DIR
      << "; regenerate with tools/corpus_gen";
}

TEST(ReplayCorpus, EveryEntryReplaysCleanlyAndPassesTheGate) {
  for (const auto& dir : corpus_entries()) {
    SCOPED_TRACE(dir);
    const auto artifact = load_artifact(dir);

    sim::RunResult result;
    try {
      result = replay_schedule(artifact.config, artifact.schedule);
    } catch (const CheckFailure& failure) {
      FAIL() << "replay diverged (protocol behaviour changed since the "
                "recording — regenerate with tools/corpus_gen): "
             << failure.what();
    }

    EXPECT_EQ(result.status, sim::RunStatus::kAllDecided);
    const auto detail =
        gate_violation(artifact.config, cell_votes(artifact.config), result);
    EXPECT_TRUE(detail.empty()) << detail;
  }
}

TEST(ReplayCorpus, ReplayIsDeterministic) {
  for (const auto& dir : corpus_entries()) {
    SCOPED_TRACE(dir);
    const auto artifact = load_artifact(dir);
    const auto first = replay_schedule(artifact.config, artifact.schedule);
    const auto second = replay_schedule(artifact.config, artifact.schedule);
    ASSERT_EQ(first.decisions.size(), second.decisions.size());
    for (size_t i = 0; i < first.decisions.size(); ++i) {
      EXPECT_EQ(first.decisions[i], second.decisions[i]);
    }
    EXPECT_EQ(first.events, second.events);
  }
}

// --- Coverage-search seed corpus (tests/corpus_search) ---------------------
//
// Regenerate with:
//   swarm_cli --search --protocols=commit --adversaries=crash --n=5
//             --chains=1 --seed-runs=6 --mutations=10 --threads=1
//             --artifacts= --corpus-out=tests/corpus_search

TEST(SearchCorpus, CorpusIsNotEmpty) {
  EXPECT_GE(load_corpus(RCOMMIT_SEARCH_CORPUS_DIR).size(), 2u)
      << "expected a distilled search corpus under "
      << RCOMMIT_SEARCH_CORPUS_DIR
      << "; regenerate with swarm_cli --search --corpus-out";
}

TEST(SearchCorpus, EveryEntryReplaysUnderTheGateWithItsFingerprint) {
  sim::BatchRunner runner;
  for (const auto& entry : load_corpus(RCOMMIT_SEARCH_CORPUS_DIR)) {
    SCOPED_TRACE(entry.config.id());
    ASSERT_NE(entry.fingerprint, 0u) << "corpus entry lost its fingerprint.txt";

    // Strict replay: corpus schedules are stored as executed, so any skipped
    // or re-filtered action is a behavior change, not a tolerable edit.
    sim::RunResult result;
    CellOutcome outcome;
    try {
      outcome = run_cell_with_adversary(
          entry.config, std::make_unique<sim::ReplayAdversary>(entry.schedule),
          {.measure = false, .record_schedule = true, .result_out = &result},
          runner);
    } catch (const CheckFailure& failure) {
      FAIL() << "replay diverged (protocol behaviour changed since the "
                "corpus was distilled — regenerate it): "
             << failure.what();
    }

    // The swarm's invariant gates hold on every retained schedule...
    EXPECT_FALSE(outcome.violation) << outcome.violation_detail;
    // ...and the behavior digest the entry was retained FOR still
    // reproduces, locking the fingerprint definition itself.
    EXPECT_EQ(run_fingerprint(entry.config, result, outcome.schedule,
                              outcome.stages),
              entry.fingerprint);
  }
}

TEST(SearchCorpus, FingerprintsAreDistinct) {
  // One schedule per novel fingerprint is the corpus's defining property.
  std::vector<uint64_t> fingerprints;
  for (const auto& entry : load_corpus(RCOMMIT_SEARCH_CORPUS_DIR)) {
    fingerprints.push_back(entry.fingerprint);
  }
  std::sort(fingerprints.begin(), fingerprints.end());
  EXPECT_TRUE(std::adjacent_find(fingerprints.begin(), fingerprints.end()) ==
              fingerprints.end())
      << "duplicate fingerprints in the distilled corpus";
}

}  // namespace
}  // namespace rcommit::swarm
