// Replays every recorded schedule in tests/corpus/ against the current
// simulator and re-checks the paper's correctness conditions. The corpus
// holds interesting-but-clean runs (near misses) recorded by tools/corpus_gen;
// a divergence here means protocol-side behaviour changed since the
// recording, and a gate failure means a regression slipped in.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "common/check.h"
#include "swarm/artifacts.h"
#include "swarm/matrix.h"
#include "swarm/runner.h"

namespace rcommit::swarm {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> corpus_entries() {
  std::vector<std::string> dirs;
  for (const auto& entry : fs::directory_iterator(RCOMMIT_CORPUS_DIR)) {
    if (entry.is_directory() && fs::exists(entry.path() / "schedule.txt")) {
      dirs.push_back(entry.path().string());
    }
  }
  std::sort(dirs.begin(), dirs.end());
  return dirs;
}

TEST(ReplayCorpus, CorpusIsNotEmpty) {
  EXPECT_GE(corpus_entries().size(), 2u)
      << "expected recorded schedules under " << RCOMMIT_CORPUS_DIR
      << "; regenerate with tools/corpus_gen";
}

TEST(ReplayCorpus, EveryEntryReplaysCleanlyAndPassesTheGate) {
  for (const auto& dir : corpus_entries()) {
    SCOPED_TRACE(dir);
    const auto artifact = load_artifact(dir);

    sim::RunResult result;
    try {
      result = replay_schedule(artifact.config, artifact.schedule);
    } catch (const CheckFailure& failure) {
      FAIL() << "replay diverged (protocol behaviour changed since the "
                "recording — regenerate with tools/corpus_gen): "
             << failure.what();
    }

    EXPECT_EQ(result.status, sim::RunStatus::kAllDecided);
    const auto detail =
        gate_violation(artifact.config, cell_votes(artifact.config), result);
    EXPECT_TRUE(detail.empty()) << detail;
  }
}

TEST(ReplayCorpus, ReplayIsDeterministic) {
  for (const auto& dir : corpus_entries()) {
    SCOPED_TRACE(dir);
    const auto artifact = load_artifact(dir);
    const auto first = replay_schedule(artifact.config, artifact.schedule);
    const auto second = replay_schedule(artifact.config, artifact.schedule);
    ASSERT_EQ(first.decisions.size(), second.decisions.size());
    for (size_t i = 0; i < first.decisions.size(); ++i) {
      EXPECT_EQ(first.decisions[i], second.decisions[i]);
    }
    EXPECT_EQ(first.events, second.events);
  }
}

}  // namespace
}  // namespace rcommit::swarm
