// Tests for the TCP loopback transport: framing over real sockets and full
// commit-protocol runs with the socket backend.
#include <gtest/gtest.h>

#include <chrono>

#include "protocol/commit.h"
#include "transport/node.h"
#include "transport/tcp.h"

namespace rcommit::transport {
namespace {

using namespace std::chrono_literals;

TEST(Tcp, FrameRoundTripOverSockets) {
  TcpNetwork net(2);
  net.start();
  WireFrame frame;
  frame.from = 0;
  frame.to = 1;
  frame.sender_clock = 5;
  frame.payload = {9, 8, 7};
  net.send(frame);
  const auto bytes = net.inbox(1).pop(2s);
  ASSERT_TRUE(bytes.has_value());
  const auto back = WireFrame::deserialize(*bytes);
  EXPECT_EQ(back.from, 0);
  EXPECT_EQ(back.to, 1);
  EXPECT_EQ(back.sender_clock, 5);
  EXPECT_EQ(back.payload, frame.payload);
  net.stop();
}

TEST(Tcp, ManyFramesPreserveOrderPerLink) {
  TcpNetwork net(2);
  net.start();
  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    WireFrame frame;
    frame.from = 0;
    frame.to = 1;
    frame.sender_clock = i;
    frame.payload = {static_cast<uint8_t>(i & 0xff)};
    net.send(frame);
  }
  for (int i = 0; i < kCount; ++i) {
    const auto bytes = net.inbox(1).pop(2s);
    ASSERT_TRUE(bytes.has_value()) << "frame " << i << " missing";
    EXPECT_EQ(WireFrame::deserialize(*bytes).sender_clock, i);
  }
  net.stop();
}

TEST(Tcp, SelfConnectionWorks) {
  TcpNetwork net(1);
  net.start();
  WireFrame frame;
  frame.from = 0;
  frame.to = 0;
  frame.payload = {1};
  net.send(frame);
  EXPECT_TRUE(net.inbox(0).pop(2s).has_value());
  net.stop();
}

TEST(Tcp, RejectsInvalidDestination) {
  TcpNetwork net(2);
  WireFrame frame;
  frame.from = 0;
  frame.to = 5;
  EXPECT_THROW(net.send(frame), CheckFailure);
}

TEST(Tcp, PortsAreDistinct) {
  TcpNetwork net(3);
  net.start();
  EXPECT_NE(net.port(0), net.port(1));
  EXPECT_NE(net.port(1), net.port(2));
  net.stop();
}

TEST(Tcp, CommitProtocolRunsOverRealSockets) {
  const SystemParams params{.n = 4, .t = 1, .k = 25};
  std::vector<int> votes(4, 1);
  auto fleet = protocol::make_commit_fleet(params, votes);
  TcpNetwork net(4);
  const auto result = run_fleet(std::move(fleet), net, /*seed=*/31, 5000ms);
  ASSERT_TRUE(result.all_decided);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kCommit);
}

TEST(Tcp, AborterWinsOverRealSockets) {
  const SystemParams params{.n = 4, .t = 1, .k = 25};
  std::vector<int> votes = {1, 0, 1, 1};
  auto fleet = protocol::make_commit_fleet(params, votes);
  TcpNetwork net(4);
  const auto result = run_fleet(std::move(fleet), net, 32, 5000ms);
  ASSERT_TRUE(result.all_decided);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kAbort);
}

}  // namespace
}  // namespace rcommit::transport
