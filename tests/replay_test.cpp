// Tests for schedule recording/replay and trace dumping: bit-identical
// re-execution (the paper's run(A, I, F) determinism, §2.3) and the
// serialization round-trip.
#include <gtest/gtest.h>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "protocol/commit.h"
#include "sim/replay.h"
#include "sim/simulator.h"
#include "sim/tracedump.h"

namespace rcommit::sim {
namespace {

RunResult run_recorded(uint64_t seed, RecordedSchedule* schedule_out) {
  SystemParams params{.n = 5, .t = 2, .k = 2};
  std::vector<int> votes = {1, 1, 0, 1, 1};
  auto recorder = std::make_unique<RecordingAdversary>(
      adversary::make_random_adversary(seed, 4));
  auto* recorder_ptr = recorder.get();
  Simulator sim({.seed = seed}, protocol::make_commit_fleet(params, votes),
                std::move(recorder));
  auto result = sim.run();
  *schedule_out = recorder_ptr->schedule();
  return result;
}

TEST(Replay, ReplayReproducesRunExactly) {
  RecordedSchedule schedule;
  const auto original = run_recorded(77, &schedule);
  ASSERT_EQ(original.status, RunStatus::kAllDecided);

  SystemParams params{.n = 5, .t = 2, .k = 2};
  std::vector<int> votes = {1, 1, 0, 1, 1};
  Simulator sim({.seed = 77}, protocol::make_commit_fleet(params, votes),
                std::make_unique<ReplayAdversary>(schedule));
  const auto replayed = sim.run();

  EXPECT_EQ(replayed.events, original.events);
  EXPECT_EQ(replayed.messages_sent, original.messages_sent);
  ASSERT_EQ(replayed.decisions.size(), original.decisions.size());
  for (size_t p = 0; p < original.decisions.size(); ++p) {
    EXPECT_EQ(replayed.decisions[p], original.decisions[p]);
  }
  ASSERT_EQ(replayed.trace.events.size(), original.trace.events.size());
  for (size_t i = 0; i < original.trace.events.size(); ++i) {
    EXPECT_EQ(replayed.trace.events[i].proc, original.trace.events[i].proc);
    EXPECT_EQ(replayed.trace.events[i].delivered, original.trace.events[i].delivered);
    EXPECT_EQ(replayed.trace.events[i].sent, original.trace.events[i].sent);
  }
}

TEST(Replay, DifferentSeedDivergesFromRecording) {
  RecordedSchedule schedule;
  (void)run_recorded(78, &schedule);

  // Replaying the schedule with a different random tape changes coin flips;
  // eventually an action references a message id that does not exist (or the
  // run simply ends early). Either way, no crash — and if it completes, the
  // decisions must still satisfy agreement.
  SystemParams params{.n = 5, .t = 2, .k = 2};
  std::vector<int> votes = {1, 1, 0, 1, 1};
  Simulator sim({.seed = 9999}, protocol::make_commit_fleet(params, votes),
                std::make_unique<ReplayAdversary>(schedule));
  try {
    const auto result = sim.run();
    EXPECT_FALSE(result.has_conflicting_decisions());
  } catch (const CheckFailure&) {
    SUCCEED();  // divergence detected, as documented
  }
}

TEST(Replay, ScheduleSerializationRoundTrip) {
  RecordedSchedule schedule;
  Action a1;
  a1.proc = 3;
  a1.deliver = {10, 11, 12};
  Action a2;
  a2.proc = 0;
  a2.crash = true;
  Action a3;
  a3.proc = 1;
  a3.crash = true;
  a3.suppress_sends_to = {2, 4};
  schedule.actions = {a1, a2, a3};

  const auto text = schedule.serialize();
  const auto back = RecordedSchedule::deserialize(text);
  ASSERT_EQ(back.actions.size(), 3u);
  EXPECT_EQ(back.actions[0].proc, 3);
  EXPECT_EQ(back.actions[0].deliver, (std::vector<MsgId>{10, 11, 12}));
  EXPECT_FALSE(back.actions[0].crash);
  EXPECT_TRUE(back.actions[1].crash);
  EXPECT_TRUE(back.actions[1].suppress_sends_to.empty());
  EXPECT_TRUE(back.actions[2].crash);
  EXPECT_EQ(back.actions[2].suppress_sends_to, (std::vector<ProcId>{2, 4}));
}

TEST(Replay, SerializedScheduleReplaysIdentically) {
  RecordedSchedule schedule;
  const auto original = run_recorded(79, &schedule);

  const auto text = schedule.serialize();
  const auto parsed = RecordedSchedule::deserialize(text);

  SystemParams params{.n = 5, .t = 2, .k = 2};
  std::vector<int> votes = {1, 1, 0, 1, 1};
  Simulator sim({.seed = 79}, protocol::make_commit_fleet(params, votes),
                std::make_unique<ReplayAdversary>(parsed));
  const auto replayed = sim.run();
  EXPECT_EQ(replayed.events, original.events);
  for (size_t p = 0; p < original.decisions.size(); ++p) {
    EXPECT_EQ(replayed.decisions[p], original.decisions[p]);
  }
}

TEST(TraceDump, NarrativeMentionsKeyEvents) {
  RecordedSchedule schedule;
  const auto result = run_recorded(80, &schedule);
  const auto text = trace_to_string(result.trace, {.show_messages = true, .k = 2});
  EXPECT_NE(text.find("trace: n=5"), std::string::npos);
  EXPECT_NE(text.find("DECIDES"), std::string::npos);
  EXPECT_NE(text.find("m0"), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
}

TEST(TraceDump, TruncatesLongTraces) {
  RecordedSchedule schedule;
  const auto result = run_recorded(81, &schedule);
  const auto text =
      trace_to_string(result.trace, {.show_messages = false, .k = 0, .max_events = 3});
  EXPECT_NE(text.find("truncated"), std::string::npos);
}

}  // namespace
}  // namespace rcommit::sim
