// Tests for the threaded transport: wire round-trips, channels, the delayed
// in-memory network, and full protocol runs over real threads.
// RCOMMIT_LINT_ALLOW_FILE(R2): transport tests drive the real threaded network
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "baselines/twopc.h"
#include "common/check.h"
#include "protocol/commit.h"
#include "protocol/messages.h"
#include "transport/channel.h"
#include "transport/network.h"
#include "transport/node.h"
#include "transport/wire.h"

namespace rcommit::transport {
namespace {

using namespace std::chrono_literals;

// --- wire ---------------------------------------------------------------------

TEST(Wire, AgreementR1RoundTrip) {
  const auto msg = sim::make_message<protocol::AgreementR1>(7, 1);
  const auto bytes = WireRegistry::instance().encode(*msg);
  const auto decoded = WireRegistry::instance().decode(bytes);
  const auto* r1 = sim::msg_cast<protocol::AgreementR1>(decoded);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->stage(), 7);
  EXPECT_EQ(r1->value(), 1);
}

TEST(Wire, AgreementR2BottomRoundTrip) {
  const auto msg = sim::make_message<protocol::AgreementR2>(3, protocol::kBottom);
  const auto decoded =
      WireRegistry::instance().decode(WireRegistry::instance().encode(*msg));
  const auto* r2 = sim::msg_cast<protocol::AgreementR2>(decoded);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->stage(), 3);
  EXPECT_EQ(r2->value(), protocol::kBottom);
  EXPECT_FALSE(r2->is_s_message());
}

TEST(Wire, PiggybackedNestedRoundTrip) {
  std::vector<uint8_t> coins = {1, 0, 1, 1, 0};
  const auto inner = sim::make_message<protocol::VoteMsg>(1);
  const auto msg = sim::make_message<protocol::PiggybackedMsg>(coins, inner);
  const auto decoded =
      WireRegistry::instance().decode(WireRegistry::instance().encode(*msg));
  const auto* pb = sim::msg_cast<protocol::PiggybackedMsg>(decoded);
  ASSERT_NE(pb, nullptr);
  EXPECT_EQ(pb->coins(), coins);
  const auto* vote = sim::msg_cast<protocol::VoteMsg>(pb->inner());
  ASSERT_NE(vote, nullptr);
  EXPECT_EQ(vote->vote(), 1);
}

TEST(Wire, DoublyNestedPiggyback) {
  // Piggyback around an agreement message (the Protocol 2 production case).
  const auto inner = sim::make_message<protocol::AgreementR2>(2, 0);
  const auto msg = sim::make_message<protocol::PiggybackedMsg>(
      std::vector<uint8_t>{1, 1, 0}, inner);
  const auto decoded =
      WireRegistry::instance().decode(WireRegistry::instance().encode(*msg));
  const auto* pb = sim::msg_cast<protocol::PiggybackedMsg>(decoded);
  ASSERT_NE(pb, nullptr);
  EXPECT_TRUE(sim::msg_cast<protocol::AgreementR2>(pb->inner()) != nullptr);
}

TEST(Wire, BaselineMessagesRoundTrip) {
  using namespace rcommit::baselines;
  const auto vote = sim::make_message<TpcVote>(0);
  const auto vote_ref =
      WireRegistry::instance().decode(WireRegistry::instance().encode(*vote));
  const auto* decoded_vote = sim::msg_cast<TpcVote>(vote_ref);
  ASSERT_NE(decoded_vote, nullptr);
  EXPECT_EQ(decoded_vote->vote(), 0);

  const auto decision = sim::make_message<TpcDecision>(1);
  const auto decision_ref =
      WireRegistry::instance().decode(WireRegistry::instance().encode(*decision));
  const auto* decoded_decision = sim::msg_cast<TpcDecision>(decision_ref);
  ASSERT_NE(decoded_decision, nullptr);
  EXPECT_TRUE(decoded_decision->commit());
}

TEST(Wire, UnknownTagThrows) {
  std::vector<uint8_t> bogus = {0xff, 0xff, 1, 2, 3};
  EXPECT_THROW((void)WireRegistry::instance().decode(bogus), CodecError);
}

TEST(Wire, TrailingBytesThrow) {
  auto bytes = WireRegistry::instance().encode(protocol::VoteMsg(1));
  bytes.push_back(0);
  EXPECT_THROW((void)WireRegistry::instance().decode(bytes), CodecError);
}

TEST(Wire, FrameRoundTrip) {
  WireFrame frame;
  frame.from = 2;
  frame.to = 4;
  frame.sender_clock = 99;
  frame.payload = {1, 2, 3, 4};
  const auto back = WireFrame::deserialize(frame.serialize());
  EXPECT_EQ(back.from, 2);
  EXPECT_EQ(back.to, 4);
  EXPECT_EQ(back.sender_clock, 99);
  EXPECT_EQ(back.payload, frame.payload);
}

// --- channel -------------------------------------------------------------------

TEST(Channel, PushPopOrder) {
  Channel<int> ch;
  ch.push(1);
  ch.push(2);
  EXPECT_EQ(ch.pop(1ms), 1);
  EXPECT_EQ(ch.pop(1ms), 2);
  EXPECT_EQ(ch.pop(1ms), std::nullopt);
}

TEST(Channel, DrainTakesEverything) {
  Channel<int> ch;
  for (int i = 0; i < 5; ++i) ch.push(i);
  const auto items = ch.drain();
  EXPECT_EQ(items.size(), 5u);
  EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, CloseWakesWaiters) {
  Channel<int> ch;
  std::thread closer([&ch] {
    std::this_thread::sleep_for(10ms);
    ch.close();
  });
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(ch.pop(5s), std::nullopt);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 2s);
  closer.join();
  EXPECT_FALSE(ch.push(1));
}

TEST(Channel, CrossThreadTransfer) {
  Channel<int> ch;
  constexpr int kCount = 1000;
  std::thread producer([&ch] {
    for (int i = 0; i < kCount; ++i) ch.push(i);
  });
  int received = 0;
  while (received < kCount) {
    if (auto v = ch.pop(100ms); v.has_value()) {
      EXPECT_EQ(*v, received);
      ++received;
    }
  }
  producer.join();
}

// --- network -------------------------------------------------------------------

TEST(Network, DeliversFrames) {
  InMemoryNetwork net(2, /*seed=*/1, {.min_delay = 0us, .max_delay = 100us});
  net.start();
  WireFrame frame;
  frame.from = 0;
  frame.to = 1;
  frame.sender_clock = 1;
  frame.payload = {42};
  net.send(frame);
  const auto bytes = net.inbox(1).pop(1s);
  ASSERT_TRUE(bytes.has_value());
  const auto back = WireFrame::deserialize(*bytes);
  EXPECT_EQ(back.from, 0);
  EXPECT_EQ(back.payload, std::vector<uint8_t>{42});
  net.stop();
}

TEST(Network, DropsWhenPolicySaysSo) {
  InMemoryNetwork net(2, 7, {.min_delay = 0us, .max_delay = 1us, .drop_prob = 1.0});
  net.start();
  WireFrame frame;
  frame.from = 0;
  frame.to = 1;
  frame.payload = {1};
  for (int i = 0; i < 10; ++i) net.send(frame);
  EXPECT_EQ(net.inbox(1).pop(50ms), std::nullopt);
  EXPECT_EQ(net.frames_dropped(), 10);
  net.stop();
}

TEST(Network, RejectsInvalidDestination) {
  InMemoryNetwork net(2, 1);
  WireFrame frame;
  frame.from = 0;
  frame.to = 9;
  EXPECT_THROW(net.send(frame), CheckFailure);
}

TEST(Network, PerLinkPolicyOverrides) {
  InMemoryNetwork net(3, 5, {.min_delay = 0us, .max_delay = 1us});
  net.set_link_policy(0, 2, {.min_delay = 0us, .max_delay = 1us, .drop_prob = 1.0});
  net.start();
  WireFrame to1{.from = 0, .to = 1, .sender_clock = 0, .payload = {7}};
  WireFrame to2{.from = 0, .to = 2, .sender_clock = 0, .payload = {7}};
  net.send(to1);
  net.send(to2);
  EXPECT_TRUE(net.inbox(1).pop(1s).has_value());
  EXPECT_EQ(net.inbox(2).pop(50ms), std::nullopt);
  net.stop();
}

// --- full protocol runs over threads ---------------------------------------------

TEST(Fleet, CommitProtocolAllCommitOverThreads) {
  const SystemParams params{.n = 5, .t = 2, .k = 25};
  std::vector<int> votes(5, 1);
  auto fleet = protocol::make_commit_fleet(params, votes);
  InMemoryNetwork net(5, 11, {.min_delay = 50us, .max_delay = 400us});
  const auto result = run_fleet(std::move(fleet), net, /*seed=*/11, 5000ms);
  ASSERT_TRUE(result.all_decided);
  for (const auto& d : result.decisions) {
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, Decision::kCommit);
  }
}

TEST(Fleet, CommitProtocolAborterWinsOverThreads) {
  const SystemParams params{.n = 5, .t = 2, .k = 25};
  std::vector<int> votes = {1, 1, 0, 1, 1};
  auto fleet = protocol::make_commit_fleet(params, votes);
  InMemoryNetwork net(5, 13, {.min_delay = 50us, .max_delay = 400us});
  const auto result = run_fleet(std::move(fleet), net, 13, 5000ms);
  ASSERT_TRUE(result.all_decided);
  for (const auto& d : result.decisions) {
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, Decision::kAbort);
  }
}

TEST(Fleet, AgreementSurvivesLossyNetwork) {
  // 10% frame loss: dropped frames model messages from crashed-mid-broadcast
  // senders; Protocol 2 must still terminate and agree because n - t quorums
  // plus retryless broadcast redundancy tolerate it... in fact a dropped
  // GUARANTEED message violates admissibility, so tolerate occasional
  // non-termination but never disagreement.
  const SystemParams params{.n = 5, .t = 2, .k = 25};
  int decided_runs = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    std::vector<int> votes(5, 1);
    auto fleet = protocol::make_commit_fleet(params, votes);
    InMemoryNetwork net(5, seed,
                        {.min_delay = 20us, .max_delay = 200us, .drop_prob = 0.10});
    const auto result = run_fleet(std::move(fleet), net, seed, 3000ms);
    std::optional<Decision> seen;
    for (const auto& d : result.decisions) {
      if (!d.has_value()) continue;
      if (seen.has_value()) {
        EXPECT_EQ(*seen, *d) << "disagreement at seed " << seed;
      }
      seen = d;
    }
    if (result.all_decided) ++decided_runs;
  }
  SUCCEED() << decided_runs << "/3 lossy runs decided";
}

TEST(Fleet, TwoPcOverThreadsCleanRun) {
  const SystemParams params{.n = 4, .t = 1, .k = 25};
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int i = 0; i < 4; ++i) {
    baselines::TwoPcProcess::Options options;
    options.params = params;
    options.initial_vote = 1;
    options.timeout = 200;
    fleet.push_back(std::make_unique<baselines::TwoPcProcess>(options));
  }
  InMemoryNetwork net(4, 17, {.min_delay = 20us, .max_delay = 200us});
  const auto result = run_fleet(std::move(fleet), net, 17, 5000ms);
  ASSERT_TRUE(result.all_decided);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kCommit);
}

TEST(NodeHost, ExposesClockProgress) {
  const SystemParams params{.n = 1, .t = 0, .k = 5};
  protocol::CommitProcess::Options options;
  options.params = params;
  options.initial_vote = 1;
  InMemoryNetwork net(1, 3);
  net.start();
  NodeHost host({.id = 0, .seed = 3, .step_period = 100us, .max_steps = 10'000},
                std::make_unique<protocol::CommitProcess>(options), net);
  host.start();
  std::this_thread::sleep_for(50ms);
  host.request_stop();
  host.join();
  net.stop();
  EXPECT_GT(host.clock(), 0);
  EXPECT_TRUE(host.decided());  // n = 1 commits immediately
  EXPECT_EQ(host.decision(), Decision::kCommit);
}

}  // namespace
}  // namespace rcommit::transport
