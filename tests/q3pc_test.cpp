// Tests for quorum-style 3PC with the termination protocol: the nonblocking
// property it buys under synchrony, and the late-message failure mode it
// retains.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "adversary/latemsg.h"
#include "baselines/q3pc.h"
#include "sim/simulator.h"

namespace rcommit::baselines {
namespace {

using sim::RunStatus;
using sim::Simulator;

const SystemParams kParams{.n = 5, .t = 2, .k = 2};

std::vector<std::unique_ptr<sim::Process>> q3pc_fleet(const std::vector<int>& votes,
                                                      Tick timeout = 0) {
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int vote : votes) {
    Q3pcProcess::Options options;
    options.params = kParams;
    options.initial_vote = vote;
    options.timeout = timeout;
    fleet.push_back(std::make_unique<Q3pcProcess>(options));
  }
  return fleet;
}

TEST(Q3pc, AllYesCommits) {
  Simulator sim({.seed = 1}, q3pc_fleet({1, 1, 1, 1, 1}),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kCommit);
}

TEST(Q3pc, OneNoAborts) {
  Simulator sim({.seed = 2}, q3pc_fleet({1, 1, 1, 0, 1}),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& d : result.decisions) EXPECT_EQ(*d, Decision::kAbort);
}

TEST(Q3pc, CoordinatorCrashBeforePreCommitRecoversToAbort) {
  // The coordinator dies after collecting votes but before any PRECOMMIT:
  // the termination protocol sees only prepared/unvoted states and aborts —
  // everyone, consistently, without blocking (unlike 2PC).
  adversary::CrashPlan plan{.victim = 0, .at_clock = 2,
                            .suppress_sends_to = {1, 2, 3, 4}};
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::vector<adversary::CrashPlan>{plan});
  Simulator sim({.seed = 3, .max_events = 20'000}, q3pc_fleet({1, 1, 1, 1, 1}),
                std::move(adv));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (ProcId p = 1; p < 5; ++p) {
    EXPECT_EQ(result.decisions[static_cast<size_t>(p)], Decision::kAbort);
  }
  EXPECT_FALSE(result.has_conflicting_decisions());
}

TEST(Q3pc, CoordinatorCrashAfterPartialPreCommitRecoversToCommit) {
  // The coordinator dies mid-PRECOMMIT-broadcast: some participants hold a
  // PRECOMMIT, others are merely prepared. The leader sees the PRECOMMIT in
  // the reports and commits everyone — the exact case plain 3PC's local
  // timeout rules get wrong.
  adversary::CrashPlan plan{.victim = 0, .at_clock = 2,
                            .suppress_sends_to = {3, 4}};
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::vector<adversary::CrashPlan>{plan});
  Simulator sim({.seed = 4, .max_events = 20'000}, q3pc_fleet({1, 1, 1, 1, 1}),
                std::move(adv));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  for (ProcId p = 1; p < 5; ++p) {
    EXPECT_EQ(result.decisions[static_cast<size_t>(p)], Decision::kCommit)
        << "participant " << p;
  }
}

TEST(Q3pc, UnlikePlain3pcPartialPreCommitCrashStaysConsistent) {
  // Sweep the suppression sets: whatever mix of prepared/precommitted the
  // crash leaves behind, the termination protocol must keep everyone
  // unanimous.
  for (int mask = 0; mask < 8; ++mask) {
    adversary::CrashPlan plan;
    plan.victim = 0;
    plan.at_clock = 2;
    for (int bit = 0; bit < 3; ++bit) {
      if ((mask >> bit) & 1) plan.suppress_sends_to.push_back(2 + bit);
    }
    if (plan.suppress_sends_to.empty()) plan.suppress_sends_to.push_back(1);
    auto adv = std::make_unique<adversary::CrashAdversary>(
        adversary::make_on_time_adversary(),
        std::vector<adversary::CrashPlan>{plan});
    Simulator sim({.seed = 5 + static_cast<uint64_t>(mask), .max_events = 20'000},
                  q3pc_fleet({1, 1, 1, 1, 1}), std::move(adv));
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided) << "mask " << mask;
    EXPECT_FALSE(result.has_conflicting_decisions()) << "mask " << mask;
  }
}

TEST(Q3pc, LateMessagesToTheLeaderSplitDecisions) {
  // The paper's point survives the smarter termination protocol: cut the
  // recovery leader (p1) off with lateness — its PRECOMMIT, the peers' state
  // reports to it, and the coordinator's outcome to it all arrive past every
  // timeout. The leader times out prepared, sees no PRECOMMIT anywhere, and
  // rules ABORT, while the live coordinator and the other participants
  // commit. One clique of late links, conflicting decisions — Protocol 2
  // under the same rules only slows down.
  std::vector<adversary::LateRule> rules;
  rules.push_back({.from = 0, .to = 1, .nth = 1, .extra_delay = 120});  // PRECOMMIT
  rules.push_back({.from = 0, .to = 1, .nth = 2, .extra_delay = 120});  // OUTCOME
  for (ProcId p = 2; p < 5; ++p) {
    rules.push_back({.from = p, .to = 1,
                     .nth = adversary::LateRule::kEveryMessage,
                     .extra_delay = 120});
  }
  Simulator sim({.seed = 20, .max_events = 60'000}, q3pc_fleet({1, 1, 1, 1, 1}),
                std::make_unique<adversary::LateMessageAdversary>(rules));
  const auto result = sim.run();
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_TRUE(result.has_conflicting_decisions())
      << "late messages should still split Q3PC";
  EXPECT_EQ(result.decisions[1], Decision::kAbort);   // the isolated leader
  EXPECT_EQ(result.decisions[0], Decision::kCommit);  // the live coordinator
}

TEST(Q3pc, ValidatesOptions) {
  Q3pcProcess::Options options;
  options.params = {.n = 1, .t = 0, .k = 1};  // needs a leader distinct from coord
  EXPECT_THROW(Q3pcProcess proc(options), CheckFailure);
}

}  // namespace
}  // namespace rcommit::baselines
