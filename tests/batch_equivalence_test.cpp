// Determinism equivalence between batch-mode execution (sim::BatchRunner
// re-arming one warm engine) and per-run Simulator construction. The batch
// front end reuses the in-flight table, the pending buffers, the per-event
// scratch, and the payload pool across runs; a run is a pure function of
// (adversary, initial configuration, seeds), so none of that reuse may leak
// between runs — every run in a batch must be byte-identical (trace dump,
// decisions, message ids) to the same run on a freshly built simulator.
// This suite is the license for the BatchRunner refactor, in the same way
// hotpath_equivalence_test licenses the PR 5 hot path.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adversary/basic.h"
#include "adversary/crash.h"
#include "protocol/commit.h"
#include "sim/batch.h"
#include "sim/simulator.h"
#include "sim/tracedump.h"

namespace rcommit {
namespace {

struct RunVariant {
  bool legacy = false;
  bool pool = false;
  bool record_trace = true;
};

sim::SimConfig make_config(uint64_t seed, const RunVariant& v) {
  return {.seed = seed,
          .record_trace = v.record_trace,
          .pool_payloads = v.pool,
          .legacy_hot_path = v.legacy};
}

/// The same commit-fleet construction as hotpath_equivalence_test: random
/// adversary wrapped in random mid-broadcast crash plans, mixed votes.
std::vector<std::unique_ptr<sim::Process>> make_fleet(int32_t n) {
  const SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  std::vector<int> votes(static_cast<size_t>(n), 1);
  if (n > 2) votes[2] = 0;  // mixed votes: exercise the abort machinery too
  return protocol::make_commit_fleet(params, votes);
}

std::unique_ptr<sim::Adversary> make_adversary(uint64_t seed, int32_t n) {
  auto inner = adversary::make_random_adversary(seed, 3);
  auto plans = adversary::random_crash_plans(seed + 1, n, /*count=*/1,
                                             /*max_clock=*/6);
  return std::make_unique<adversary::CrashAdversary>(std::move(inner),
                                                     std::move(plans));
}

sim::RunResult run_fresh(uint64_t seed, int32_t n, const RunVariant& v) {
  sim::Simulator sim(make_config(seed, v), make_fleet(n), make_adversary(seed, n));
  return sim.run();
}

sim::RunResult run_batched(sim::BatchRunner& runner, uint64_t seed, int32_t n,
                           const RunVariant& v) {
  return runner.run(make_config(seed, v), make_fleet(n), make_adversary(seed, n));
}

void expect_equivalent(const sim::RunResult& fresh, const sim::RunResult& batched,
                       bool compare_traces, const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(fresh.status, batched.status);
  EXPECT_EQ(fresh.events, batched.events);
  EXPECT_EQ(fresh.messages_sent, batched.messages_sent);
  EXPECT_EQ(fresh.messages_delivered, batched.messages_delivered);
  EXPECT_EQ(fresh.decisions, batched.decisions);
  EXPECT_EQ(fresh.crashed, batched.crashed);
  EXPECT_EQ(fresh.decide_clock, batched.decide_clock);
  EXPECT_EQ(fresh.decide_event, batched.decide_event);
  if (compare_traces) {
    EXPECT_EQ(sim::trace_to_string(fresh.trace), sim::trace_to_string(batched.trace));
  }
}

TEST(BatchEquivalence, WarmEngineMatchesFreshConstructionAcrossCrashMatrix) {
  // One runner across the whole matrix: by the later seeds the engine's
  // storage carries capacity (and dead state, were the reset buggy) from
  // dozens of earlier runs with different fleet sizes and crash plans.
  for (const RunVariant v : {RunVariant{.pool = false}, RunVariant{.pool = true}}) {
    sim::BatchRunner runner;
    for (const int32_t n : {3, 5, 7}) {
      for (uint64_t seed = 1; seed <= 8; ++seed) {
        const auto fresh = run_fresh(seed, n, v);
        const auto batched = run_batched(runner, seed, n, v);
        expect_equivalent(fresh, batched, /*compare_traces=*/true,
                          "n=" + std::to_string(n) + " seed=" + std::to_string(seed) +
                              (v.pool ? " pool" : " heap"));
      }
    }
    EXPECT_EQ(runner.stats().runs, 24);
  }
}

TEST(BatchEquivalence, FleetSizeMayShrinkAndGrowWithinABatch) {
  // arm() must fully re-dimension per-processor state in both directions; a
  // stale clock, crash flag, or pending buffer from a 7-fleet run would
  // corrupt the 3-fleet run that follows it.
  sim::BatchRunner runner;
  const RunVariant v{.pool = true};
  for (const int32_t n : {7, 3, 5, 7, 3}) {
    const uint64_t seed = 11 + static_cast<uint64_t>(n);
    expect_equivalent(run_fresh(seed, n, v), run_batched(runner, seed, n, v),
                      /*compare_traces=*/true, "n=" + std::to_string(n));
  }
}

TEST(BatchEquivalence, TraceModeMayToggleBetweenRuns) {
  // The swarm sweep mixes trace-off fast-path runs with traced gate runs on
  // the same worker; leftover trace storage must never bleed into a later
  // run's trace (or its metadata bookkeeping).
  sim::BatchRunner runner;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const RunVariant traced{.record_trace = true};
    const RunVariant fast{.record_trace = false};
    expect_equivalent(run_fresh(seed, 5, traced),
                      run_batched(runner, seed, 5, traced),
                      /*compare_traces=*/true, "traced seed=" + std::to_string(seed));
    expect_equivalent(run_fresh(seed, 5, fast), run_batched(runner, seed, 5, fast),
                      /*compare_traces=*/false, "fast seed=" + std::to_string(seed));
  }
}

TEST(BatchEquivalence, LegacyHotPathRunsBatchedToo) {
  // The preserved legacy loop shares the engine; toggling it between runs of
  // one batch must leave both paths byte-identical to fresh construction.
  sim::BatchRunner runner;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const RunVariant legacy{.legacy = true};
    const RunVariant current{.legacy = false};
    expect_equivalent(run_fresh(seed, 5, legacy),
                      run_batched(runner, seed, 5, legacy),
                      /*compare_traces=*/true, "legacy seed=" + std::to_string(seed));
    expect_equivalent(run_fresh(seed, 5, current),
                      run_batched(runner, seed, 5, current),
                      /*compare_traces=*/true, "current seed=" + std::to_string(seed));
  }
}

TEST(BatchEquivalence, StatsAccumulateAcrossRuns) {
  sim::BatchRunner runner;
  const auto first = run_batched(runner, 1, 3, RunVariant{});
  const auto second = run_batched(runner, 2, 3, RunVariant{});
  EXPECT_EQ(runner.stats().runs, 2);
  EXPECT_EQ(runner.stats().events, first.events + second.events);
  EXPECT_EQ(runner.stats().messages_sent,
            first.messages_sent + second.messages_sent);
  // The last run's fleet stays inspectable, as with Simulator::processes().
  EXPECT_EQ(runner.processes().size(), 3u);
  EXPECT_NE(runner.adversary(), nullptr);
}

}  // namespace
}  // namespace rcommit
