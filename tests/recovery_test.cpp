// Tests for the in-doubt transaction recovery manager: outcome adoption,
// the unprepared-participant abort rule, and the rerun-the-protocol path.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/codec.h"
#include "db/kv.h"
#include "db/recovery.h"
#include "db/wal.h"

namespace rcommit::db {
namespace {

namespace fs = std::filesystem;

class RecoveryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = fs::temp_directory_path() /
           ("rcommit_recovery_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] fs::path wal_path(int shard) const {
    return dir_ / ("shard-" + std::to_string(shard) + ".wal");
  }

  fs::path dir_;
};

TEST_F(RecoveryFixture, AdoptsRecordedCommit) {
  // Shard 0 committed txn 1; shard 1 crashed prepared. Recovery must commit
  // shard 1's copy.
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(1, {{"a", "A"}}));
    shard0.commit(1);
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(1, {{"b", "B"}}));
    // shard1 "crashes" here.
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  ASSERT_EQ(shard1.in_doubt().size(), 1u);

  RecoveryManager recovery({&shard0, &shard1}, {});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.resolved_commit, 1);
  EXPECT_EQ(report.resolved_abort, 0);
  EXPECT_EQ(report.reran_protocol, 0);
  EXPECT_EQ(shard1.get("b"), "B");
  EXPECT_TRUE(shard1.in_doubt().empty());
}

TEST_F(RecoveryFixture, AdoptsRecordedAbort) {
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(2, {{"a", "A"}}));
    shard0.abort(2);
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(2, {{"b", "B"}}));
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.resolved_abort, 1);
  EXPECT_EQ(shard1.get("b"), std::nullopt);
  EXPECT_TRUE(shard1.in_doubt().empty());
}

TEST_F(RecoveryFixture, UnpreparedParticipantForcesAbort) {
  // Shard 0 began but never prepared (crashed mid-prepare); shard 1 is
  // prepared. Shard 0 can never have voted commit, so abort is the only safe
  // outcome.
  {
    WriteAheadLog wal0(wal_path(0));
    wal0.append({WalRecordType::kBegin, 3, "", ""});
    wal0.append({WalRecordType::kWrite, 3, "a", "A"});
    // no kPrepared: crash mid-prepare
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(3, {{"b", "B"}}));
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.resolved_abort, 1);
  EXPECT_EQ(report.reran_protocol, 0);
  EXPECT_EQ(shard1.get("b"), std::nullopt);
}

TEST_F(RecoveryFixture, AllPreparedRerunsProtocolAndAgrees) {
  // Every shard prepared, nobody recorded an outcome: recovery reruns the
  // commit protocol with all-commit votes; all shards get the same outcome.
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(4, {{"a", "A"}}));
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(4, {{"b", "B"}}));
    KvStore shard2(wal_path(2));
    ASSERT_TRUE(shard2.prepare(4, {{"c", "C"}}));
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  KvStore shard2(wal_path(2));
  RecoveryManager recovery({&shard0, &shard1, &shard2}, {.seed = 9});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.reran_protocol, 1);
  EXPECT_EQ(report.resolved_commit + report.resolved_abort, 1);
  // Whatever was decided, it is uniform: all three applied or none.
  const bool a = shard0.get("a").has_value();
  const bool b = shard1.get("b").has_value();
  const bool c = shard2.get("c").has_value();
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_TRUE(shard0.in_doubt().empty());
  EXPECT_TRUE(shard1.in_doubt().empty());
  EXPECT_TRUE(shard2.in_doubt().empty());
}

TEST_F(RecoveryFixture, LonePreparedShardCommits) {
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(5, {{"solo", "X"}}));
  }
  KvStore shard0(wal_path(0));
  RecoveryManager recovery({&shard0}, {});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.resolved_commit, 1);
  EXPECT_EQ(shard0.get("solo"), "X");
}

TEST_F(RecoveryFixture, MultipleInDoubtTransactionsResolvedIndependently) {
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(10, {{"k10", "v"}}));
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(10, {{"k10", "v"}}));
    shard1.commit(10);
    ASSERT_TRUE(shard1.prepare(11, {{"k11", "v"}}));
    ASSERT_TRUE(shard0.prepare(11, {{"k11", "v"}}));
    shard0.abort(11);
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.resolved_commit, 1);  // txn 10 adopts shard1's commit
  EXPECT_EQ(report.resolved_abort, 1);   // txn 11 adopts shard0's abort
  EXPECT_EQ(shard0.get("k10"), "v");
  EXPECT_EQ(shard1.get("k11"), std::nullopt);
}

TEST_F(RecoveryFixture, ResolveAllIsIdempotent) {
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(6, {{"x", "1"}}));
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(6, {{"y", "1"}}));
    shard1.commit(6);
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {});
  (void)recovery.resolve_all();
  const auto second = recovery.resolve_all();
  EXPECT_EQ(second.resolved_commit + second.resolved_abort, 0);
}

/// Appends a well-framed record (valid CRC) with an arbitrary type byte —
/// the corruption WriteAheadLog::append can never produce itself.
void append_raw_record(const fs::path& path, uint8_t type, int64_t txn) {
  BufWriter body;
  body.u8(type);
  body.svarint(txn);
  body.str("k");
  body.str("v");
  BufWriter frame;
  frame.u32(static_cast<uint32_t>(body.size()));
  frame.u32(crc32c(std::span<const uint8_t>(body.data())));
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(frame.data().data()),
            static_cast<std::streamsize>(frame.size()));
  out.write(reinterpret_cast<const char*>(body.data().data()),
            static_cast<std::streamsize>(body.size()));
}

TEST_F(RecoveryFixture, UnknownRecordTypeStopsReplayDespiteValidCrc) {
  // A record whose CRC is intact but whose type byte is outside WalRecordType
  // must be rejected, not silently skipped: replay stops there and trusts
  // nothing after — so the commit record behind it is NOT honoured and the
  // transaction surfaces as in doubt.
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(8, {{"a", "A"}}));
  }
  append_raw_record(wal_path(0), 9, 8);  // type 9: not a WalRecordType
  {
    WriteAheadLog wal0(wal_path(0));
    EXPECT_EQ(wal0.replay().size(), 3u);  // begin + write + prepared; type 9 gone
  }
  KvStore shard0(wal_path(0));
  EXPECT_EQ(shard0.in_doubt(), std::vector<TxnId>{8});
  EXPECT_EQ(shard0.get("a"), std::nullopt);
}

TEST_F(RecoveryFixture, CorruptTailIsTruncatedSoLaterAppendsSurvive) {
  // The torture suite's headline find: recovery appends its resolution to the
  // WAL, and if a torn/invalid tail were left in place those appends would be
  // unreachable on the next open. Opening the log must truncate the tail.
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(9, {{"a", "A"}}));
  }
  append_raw_record(wal_path(0), 200, 9);  // invalid type: distrusted tail
  {
    KvStore shard0(wal_path(0));  // open truncates the bad tail
    ASSERT_EQ(shard0.in_doubt(), std::vector<TxnId>{9});
    shard0.commit(9);  // appended after the (now removed) corruption
  }
  KvStore shard0(wal_path(0));
  EXPECT_TRUE(shard0.in_doubt().empty());
  EXPECT_EQ(shard0.get("a"), "A");
}

TEST_F(RecoveryFixture, MissingIntendedParticipantForcesAbort) {
  // Shard 0's PREPARED record names {0, 1} as the participant set, but shard 1
  // has no WAL trace at all — the crash struck between the two prepares.
  // Without the recorded list this is indistinguishable from a lone-shard
  // transaction (which commits); with it, recovery must abort.
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(20, {{"a", "A"}}, {0, 1}));
    KvStore shard1(wal_path(1));  // creates an empty WAL, nothing recorded
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.resolved_abort, 1);
  EXPECT_EQ(report.resolved_commit, 0);
  EXPECT_EQ(report.reran_protocol, 0);
  EXPECT_EQ(shard0.get("a"), std::nullopt);
  EXPECT_TRUE(shard0.in_doubt().empty());
}

TEST_F(RecoveryFixture, FullParticipantListPreparedStillCommits) {
  // Same recorded list, but both participants did prepare: rule 3 applies and
  // the rerun commits (all votes are 1).
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(21, {{"a", "A"}}, {0, 1}));
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(21, {{"b", "B"}}, {0, 1}));
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {.seed = 17});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.reran_protocol, 1);
  EXPECT_EQ(report.resolved_commit, 1);
  EXPECT_EQ(shard0.get("a"), "A");
  EXPECT_EQ(shard1.get("b"), "B");
}

TEST_F(RecoveryFixture, ShardIdMappingResolvesParticipantLists) {
  // RPC-style deployment: the shards vector holds nodes {5, 6}. Node 5's
  // PREPARED record names {5, 6}; node 6 never prepared. The mapping must
  // translate ids to vector positions so rule 2 still fires.
  {
    KvStore shard5(wal_path(5));
    ASSERT_TRUE(shard5.prepare(30, {{"a", "A"}}, {5, 6}));
    KvStore shard6(wal_path(6));
  }
  KvStore shard5(wal_path(5));
  KvStore shard6(wal_path(6));
  RecoveryManager recovery({&shard5, &shard6}, {.shard_ids = {5, 6}});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.resolved_abort, 1);
  EXPECT_EQ(shard5.get("a"), std::nullopt);
}

// --- sealed decision batches -------------------------------------------------------

TEST_F(RecoveryFixture, SealedBatchRerunsProtocolOnceForAllMembers) {
  // Two rule-3 transactions sealed into one decision batch: recovery must run
  // ONE protocol rerun (seeded by the batch id) and give both members its
  // decision — mirroring the single live round the seal records.
  {
    KvStore shard0(wal_path(0));
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard0.prepare(40, {{"a", "A"}}, {0, 1}));
    ASSERT_TRUE(shard1.prepare(40, {{"c", "C"}}, {0, 1}));
    ASSERT_TRUE(shard0.prepare(41, {{"b", "B"}}, {0, 1}));
    ASSERT_TRUE(shard1.prepare(41, {{"d", "D"}}, {0, 1}));
    shard0.seal_batch(40, {40, 41});
    shard1.seal_batch(40, {40, 41});
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {.seed = 11});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.reran_protocol, 1);  // one round for two members
  EXPECT_EQ(report.resolved_commit, 2);  // on-time all-yes rerun commits
  EXPECT_EQ(shard0.get("a"), "A");
  EXPECT_EQ(shard1.get("d"), "D");
  EXPECT_TRUE(shard0.in_doubt().empty());
  EXPECT_TRUE(shard1.in_doubt().empty());
}

TEST_F(RecoveryFixture, SealedBatchWithRecordedOutcomeMixesRules) {
  // Member 51 already has a recorded commit (rule 1); member 50 is rule 3.
  // The recorded outcome stands on its own — only 50 joins the batch rerun.
  {
    KvStore shard0(wal_path(0));
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard0.prepare(50, {{"a", "A"}}, {0, 1}));
    ASSERT_TRUE(shard1.prepare(50, {{"b", "B"}}, {0, 1}));
    ASSERT_TRUE(shard0.prepare(51, {{"c", "C"}}, {0, 1}));
    ASSERT_TRUE(shard1.prepare(51, {{"d", "D"}}, {0, 1}));
    shard0.seal_batch(50, {50, 51});
    shard1.seal_batch(50, {50, 51});
    shard0.commit(51);  // outcome reached shard 0 before the crash
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {.seed = 11});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.reran_protocol, 1);
  EXPECT_EQ(report.resolved_commit, 2);  // 50 via rerun, 51 via adoption
  EXPECT_EQ(shard1.get("d"), "D");
  EXPECT_TRUE(shard0.in_doubt().empty());
  EXPECT_TRUE(shard1.in_doubt().empty());
}

TEST_F(RecoveryFixture, SealedBatchMemberFailingRuleTwoAbortsAlone) {
  // Member 60 names shard 1 as a participant but shard 1 never prepared it:
  // rule 2 aborts 60 without a rerun. Member 61 is rule 3 and still gets the
  // batch's single rerun.
  {
    KvStore shard0(wal_path(0));
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard0.prepare(60, {{"a", "A"}}, {0, 1}));
    // shard 1 crashed before preparing 60 — no trace at all.
    ASSERT_TRUE(shard0.prepare(61, {{"b", "B"}}, {0, 1}));
    ASSERT_TRUE(shard1.prepare(61, {{"c", "C"}}, {0, 1}));
    shard0.seal_batch(60, {60, 61});
    shard1.seal_batch(60, {60, 61});
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {.seed = 11});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.reran_protocol, 1);  // only 61 needed the round
  EXPECT_EQ(report.resolved_abort, 1);   // 60, by rule 2
  EXPECT_EQ(report.resolved_commit, 1);  // 61, by the rerun
  EXPECT_EQ(shard0.get("a"), std::nullopt);
  EXPECT_EQ(shard1.get("c"), "C");
}

TEST_F(RecoveryFixture, UnsealedRuleThreeTransactionsStillRerunPerTxn) {
  // Without seals the PR 9 behaviour is untouched: each rule-3 transaction
  // reruns its own round.
  {
    KvStore shard0(wal_path(0));
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard0.prepare(70, {{"a", "A"}}, {0, 1}));
    ASSERT_TRUE(shard1.prepare(70, {{"b", "B"}}, {0, 1}));
    ASSERT_TRUE(shard0.prepare(71, {{"c", "C"}}, {0, 1}));
    ASSERT_TRUE(shard1.prepare(71, {{"d", "D"}}, {0, 1}));
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {.seed = 11});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.reran_protocol, 2);
  EXPECT_EQ(report.resolved_commit, 2);
}

TEST_F(RecoveryFixture, SealOnSubsetOfShardsStillBatches) {
  // A torn group can leave the seal on only one shard's WAL. The survey
  // merges seals across shards, so one surviving copy is enough to batch.
  {
    KvStore shard0(wal_path(0));
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard0.prepare(80, {{"a", "A"}}, {0, 1}));
    ASSERT_TRUE(shard1.prepare(80, {{"b", "B"}}, {0, 1}));
    ASSERT_TRUE(shard0.prepare(81, {{"c", "C"}}, {0, 1}));
    ASSERT_TRUE(shard1.prepare(81, {{"d", "D"}}, {0, 1}));
    shard0.seal_batch(80, {80, 81});  // shard 1's copy was torn away
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {.seed = 11});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.reran_protocol, 1);
  EXPECT_EQ(report.resolved_commit, 2);
}

TEST_F(RecoveryFixture, SurveyReportsPerShardStatus) {
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(7, {{"a", "A"}}));
    shard0.commit(7);
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(7, {{"b", "B"}}));
    WriteAheadLog wal2(wal_path(2));
    wal2.append({WalRecordType::kBegin, 7, "", ""});
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  KvStore shard2(wal_path(2));
  RecoveryManager recovery({&shard0, &shard1, &shard2}, {});
  const auto statuses = recovery.survey(7);
  EXPECT_EQ(statuses.at(0), ShardTxnStatus::kCommitted);
  EXPECT_EQ(statuses.at(1), ShardTxnStatus::kPrepared);
  EXPECT_EQ(statuses.at(2), ShardTxnStatus::kStagedOnly);
}

}  // namespace
}  // namespace rcommit::db
