// Tests for the in-doubt transaction recovery manager: outcome adoption,
// the unprepared-participant abort rule, and the rerun-the-protocol path.
#include <gtest/gtest.h>

#include <filesystem>

#include "db/kv.h"
#include "db/recovery.h"
#include "db/wal.h"

namespace rcommit::db {
namespace {

namespace fs = std::filesystem;

class RecoveryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = fs::temp_directory_path() /
           ("rcommit_recovery_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] fs::path wal_path(int shard) const {
    return dir_ / ("shard-" + std::to_string(shard) + ".wal");
  }

  fs::path dir_;
};

TEST_F(RecoveryFixture, AdoptsRecordedCommit) {
  // Shard 0 committed txn 1; shard 1 crashed prepared. Recovery must commit
  // shard 1's copy.
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(1, {{"a", "A"}}));
    shard0.commit(1);
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(1, {{"b", "B"}}));
    // shard1 "crashes" here.
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  ASSERT_EQ(shard1.in_doubt().size(), 1u);

  RecoveryManager recovery({&shard0, &shard1}, {});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.resolved_commit, 1);
  EXPECT_EQ(report.resolved_abort, 0);
  EXPECT_EQ(report.reran_protocol, 0);
  EXPECT_EQ(shard1.get("b"), "B");
  EXPECT_TRUE(shard1.in_doubt().empty());
}

TEST_F(RecoveryFixture, AdoptsRecordedAbort) {
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(2, {{"a", "A"}}));
    shard0.abort(2);
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(2, {{"b", "B"}}));
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.resolved_abort, 1);
  EXPECT_EQ(shard1.get("b"), std::nullopt);
  EXPECT_TRUE(shard1.in_doubt().empty());
}

TEST_F(RecoveryFixture, UnpreparedParticipantForcesAbort) {
  // Shard 0 began but never prepared (crashed mid-prepare); shard 1 is
  // prepared. Shard 0 can never have voted commit, so abort is the only safe
  // outcome.
  {
    WriteAheadLog wal0(wal_path(0));
    wal0.append({WalRecordType::kBegin, 3, "", ""});
    wal0.append({WalRecordType::kWrite, 3, "a", "A"});
    // no kPrepared: crash mid-prepare
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(3, {{"b", "B"}}));
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.resolved_abort, 1);
  EXPECT_EQ(report.reran_protocol, 0);
  EXPECT_EQ(shard1.get("b"), std::nullopt);
}

TEST_F(RecoveryFixture, AllPreparedRerunsProtocolAndAgrees) {
  // Every shard prepared, nobody recorded an outcome: recovery reruns the
  // commit protocol with all-commit votes; all shards get the same outcome.
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(4, {{"a", "A"}}));
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(4, {{"b", "B"}}));
    KvStore shard2(wal_path(2));
    ASSERT_TRUE(shard2.prepare(4, {{"c", "C"}}));
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  KvStore shard2(wal_path(2));
  RecoveryManager recovery({&shard0, &shard1, &shard2}, {.seed = 9});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.reran_protocol, 1);
  EXPECT_EQ(report.resolved_commit + report.resolved_abort, 1);
  // Whatever was decided, it is uniform: all three applied or none.
  const bool a = shard0.get("a").has_value();
  const bool b = shard1.get("b").has_value();
  const bool c = shard2.get("c").has_value();
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_TRUE(shard0.in_doubt().empty());
  EXPECT_TRUE(shard1.in_doubt().empty());
  EXPECT_TRUE(shard2.in_doubt().empty());
}

TEST_F(RecoveryFixture, LonePreparedShardCommits) {
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(5, {{"solo", "X"}}));
  }
  KvStore shard0(wal_path(0));
  RecoveryManager recovery({&shard0}, {});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.resolved_commit, 1);
  EXPECT_EQ(shard0.get("solo"), "X");
}

TEST_F(RecoveryFixture, MultipleInDoubtTransactionsResolvedIndependently) {
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(10, {{"k10", "v"}}));
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(10, {{"k10", "v"}}));
    shard1.commit(10);
    ASSERT_TRUE(shard1.prepare(11, {{"k11", "v"}}));
    ASSERT_TRUE(shard0.prepare(11, {{"k11", "v"}}));
    shard0.abort(11);
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {});
  const auto report = recovery.resolve_all();
  EXPECT_EQ(report.resolved_commit, 1);  // txn 10 adopts shard1's commit
  EXPECT_EQ(report.resolved_abort, 1);   // txn 11 adopts shard0's abort
  EXPECT_EQ(shard0.get("k10"), "v");
  EXPECT_EQ(shard1.get("k11"), std::nullopt);
}

TEST_F(RecoveryFixture, ResolveAllIsIdempotent) {
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(6, {{"x", "1"}}));
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(6, {{"y", "1"}}));
    shard1.commit(6);
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  RecoveryManager recovery({&shard0, &shard1}, {});
  (void)recovery.resolve_all();
  const auto second = recovery.resolve_all();
  EXPECT_EQ(second.resolved_commit + second.resolved_abort, 0);
}

TEST_F(RecoveryFixture, SurveyReportsPerShardStatus) {
  {
    KvStore shard0(wal_path(0));
    ASSERT_TRUE(shard0.prepare(7, {{"a", "A"}}));
    shard0.commit(7);
    KvStore shard1(wal_path(1));
    ASSERT_TRUE(shard1.prepare(7, {{"b", "B"}}));
    WriteAheadLog wal2(wal_path(2));
    wal2.append({WalRecordType::kBegin, 7, "", ""});
  }
  KvStore shard0(wal_path(0));
  KvStore shard1(wal_path(1));
  KvStore shard2(wal_path(2));
  RecoveryManager recovery({&shard0, &shard1, &shard2}, {});
  const auto statuses = recovery.survey(7);
  EXPECT_EQ(statuses.at(0), ShardTxnStatus::kCommitted);
  EXPECT_EQ(statuses.at(1), ShardTxnStatus::kPrepared);
  EXPECT_EQ(statuses.at(2), ShardTxnStatus::kStagedOnly);
}

}  // namespace
}  // namespace rcommit::db
