// Tests for Protocol 2 (the transaction commit protocol): Theorem 9's three
// conditions, Theorem 10/11 behaviour, the 8K fast path, GO piggybacking and
// timeouts, and graceful degradation.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "adversary/adaptive.h"
#include "adversary/basic.h"
#include "adversary/crash.h"
#include "adversary/partition.h"
#include "adversary/stretch.h"
#include "common/rng.h"
#include "metrics/counters.h"
#include "protocol/commit.h"
#include "protocol/invariants.h"
#include "sim/ontime.h"
#include "sim/rounds.h"
#include "sim/simulator.h"

namespace rcommit::protocol {
namespace {

using sim::RunResult;
using sim::RunStatus;
using sim::Simulator;

RunResult run_commit(const SystemParams& params, const std::vector<int>& votes,
                     uint64_t seed, std::unique_ptr<sim::Adversary> adv,
                     int64_t max_events = 2'000'000) {
  Simulator sim({.seed = seed, .max_events = max_events},
                make_commit_fleet(params, votes), std::move(adv));
  return sim.run();
}

// --- commit validity (Theorem 9, third part) -----------------------------------

TEST(Commit, AllCommitFailureFreeOnTimeCommits) {
  SystemParams params{.n = 5, .t = 2, .k = 2};
  const auto result = run_commit(params, {1, 1, 1, 1, 1}, 1,
                                 adversary::make_on_time_adversary());
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_TRUE(sim::is_on_time(result.trace, params.k));
  EXPECT_EQ(result.agreed_decision(), Decision::kCommit);
}

TEST(Commit, FastPathWithin8K) {
  // Remark (1) §3.2: failure-free on-time runs decide within 8K clock ticks.
  for (Tick k : {2, 5, 10}) {
    SystemParams params{.n = 5, .t = 2, .k = k};
    Simulator sim({.seed = 7}, make_commit_fleet(params, {1, 1, 1, 1, 1}),
                  adversary::make_on_time_adversary());
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided);
    ASSERT_TRUE(sim::is_on_time(result.trace, k));
    for (const auto& clock : result.trace.decide_clock) {
      ASSERT_TRUE(clock.has_value());
      EXPECT_LE(*clock, 8 * k) << "decide later than 8K with K=" << k;
    }
  }
}

// --- abort validity (Theorem 9, second part) --------------------------------------

class AbortValiditySweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(AbortValiditySweep, AnyInitialAbortForcesAbort) {
  const auto [n, seed] = GetParam();
  SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  // One aborter at a seed-dependent position; everyone else wants commit.
  std::vector<int> votes(static_cast<size_t>(n), 1);
  votes[seed % static_cast<size_t>(n)] = 0;
  const auto result = run_commit(params, votes, seed,
                                 adversary::make_random_adversary(seed * 3, 5));
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_EQ(result.agreed_decision(), Decision::kAbort);
  EXPECT_TRUE(abort_validity_holds(result, votes));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AbortValiditySweep,
                         ::testing::Combine(::testing::Values(3, 5, 7, 9),
                                            ::testing::Range<uint64_t>(1, 9)));

TEST(Commit, AbortValidityHoldsUnderLateMessages) {
  // Abort validity must hold "no matter what the timing behavior of the
  // system is": stretch every delay way past K.
  SystemParams params{.n = 5, .t = 2, .k = 1};
  std::vector<int> votes = {1, 1, 0, 1, 1};
  const auto result = run_commit(params, votes, 3,
                                 std::make_unique<adversary::DelayStretchAdversary>(9));
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_EQ(result.agreed_decision(), Decision::kAbort);
}

TEST(Commit, AbortValidityHoldsUnderCrashes) {
  SystemParams params{.n = 7, .t = 3, .k = 2};
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<int> votes(7, 1);
    votes[static_cast<size_t>(seed % 7)] = 0;
    auto plans = adversary::random_crash_plans(seed, 7, 3, 30);
    // Never crash the aborter itself for this test: its abort wish must win
    // even when everything else goes wrong.
    std::erase_if(plans, [&](const adversary::CrashPlan& p) {
      return votes[static_cast<size_t>(p.victim)] == 0;
    });
    // A coordinator that dies before ever sending GO produces a run in which
    // no processor receives a message — a case the problem statement exempts
    // from termination (§2.4). Let it live one step so the GO goes out.
    for (auto& p : plans) {
      if (p.victim == 0 && p.at_clock == 1 && p.suppress_sends_to.empty()) {
        p.at_clock = 2;
      }
    }
    auto adv = std::make_unique<adversary::CrashAdversary>(
        adversary::make_random_adversary(seed, 4), std::move(plans));
    const auto result = run_commit(params, votes, seed, std::move(adv));
    ASSERT_EQ(result.status, RunStatus::kAllDecided) << "seed " << seed;
    EXPECT_EQ(result.agreed_decision(), Decision::kAbort) << "seed " << seed;
  }
}

// --- agreement (Theorem 9, first part; Theorem 11) ----------------------------------

class CommitAgreementSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, int>> {};

TEST_P(CommitAgreementSweep, NoConflictingDecisionsEver) {
  const auto [n, seed, crash_count] = GetParam();
  SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  RandomTape vote_rng(seed * 17 + 1);
  std::vector<int> votes(static_cast<size_t>(n));
  for (auto& v : votes) v = vote_rng.flip();
  auto plans = adversary::random_crash_plans(seed + 99, n, crash_count, 40);
  // Exempt the no-message-ever-received degenerate case (§2.4): keep the
  // coordinator alive for its GO broadcast.
  for (auto& p : plans) {
    if (p.victim == 0 && p.at_clock == 1 && p.suppress_sends_to.empty()) {
      p.at_clock = 2;
    }
  }
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_random_adversary(seed, 6), std::move(plans));
  // crash_count can exceed t: the run may block, but must never conflict.
  const auto result = run_commit(params, votes, seed, std::move(adv),
                                 /*max_events=*/40'000);
  EXPECT_TRUE(agreement_holds(result));
  EXPECT_TRUE(abort_validity_holds(result, votes));
  if (crash_count <= params.t) {
    EXPECT_EQ(result.status, RunStatus::kAllDecided)
        << "within fault bound the protocol must terminate";
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultMatrix, CommitAgreementSweep,
    ::testing::Combine(::testing::Values(5, 7), ::testing::Range<uint64_t>(1, 11),
                       ::testing::Values(0, 1, 2, 3, 4)));

TEST(Commit, MoreThanHalfCrashedBlocksWithoutWrongAnswer) {
  // Theorem 11: exceed the fault bound; the protocol "simply fails to
  // terminate" — leaving open the opportunity to recover.
  SystemParams params{.n = 6, .t = 2, .k = 1};
  std::vector<adversary::CrashPlan> plans;
  for (ProcId v = 0; v < 3; ++v) {
    // Crash after the GO has spread (clock 2) but before the agreement
    // subroutine can assemble quorums; the delay-1 fast path would otherwise
    // already decide by clock ~6.
    plans.push_back({.victim = v, .at_clock = 3, .suppress_sends_to = {}});
  }
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::move(plans));
  const auto result = run_commit(params, {1, 1, 1, 1, 1, 1}, 11, std::move(adv),
                                 /*max_events=*/20'000);
  EXPECT_TRUE(agreement_holds(result));
  // The three survivors of n=6 cannot reach the quorum n - t = 4.
  EXPECT_NE(result.status, RunStatus::kAllDecided);
}

TEST(Commit, PermanentPartitionBlocksButStaysSafe) {
  SystemParams params{.n = 6, .t = 2, .k = 1};
  auto adv = std::make_unique<adversary::PartitionAdversary>(
      std::vector<ProcId>{0, 1, 2}, adversary::PartitionAdversary::kNever);
  const auto result = run_commit(params, {1, 1, 1, 1, 1, 1}, 12, std::move(adv),
                                 /*max_events=*/20'000);
  EXPECT_TRUE(agreement_holds(result));
}

TEST(Commit, HealedPartitionTerminates) {
  SystemParams params{.n = 5, .t = 2, .k = 1};
  auto adv = std::make_unique<adversary::PartitionAdversary>(
      std::vector<ProcId>{0, 1}, /*heal_at_event=*/400);
  const auto result = run_commit(params, {1, 1, 1, 1, 1}, 13, std::move(adv));
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_TRUE(agreement_holds(result));
  // The partition made messages late, so committing is NOT required — but
  // whatever the outcome, it is unanimous.
  EXPECT_TRUE(result.agreed_decision().has_value());
}

// --- timeouts and GO handling ----------------------------------------------------

TEST(Commit, LateGoSwitchesVoteToAbort) {
  // Delay everything by far more than 2K: processors time out waiting for the
  // n GO messages and switch their votes to abort (lines 5-6).
  SystemParams params{.n = 5, .t = 2, .k = 1};
  const auto result = run_commit(params, {1, 1, 1, 1, 1}, 21,
                                 std::make_unique<adversary::DelayStretchAdversary>(20));
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  // Run was not on-time, so commit validity does not apply; the protocol
  // must still agree unanimously — and with universal GO timeouts it aborts.
  EXPECT_EQ(result.agreed_decision(), Decision::kAbort);
}

TEST(Commit, StretchedButModestDelaysStillDecide) {
  SystemParams params{.n = 5, .t = 2, .k = 4};
  const auto result = run_commit(params, {1, 1, 1, 1, 1}, 22,
                                 std::make_unique<adversary::DelayStretchAdversary>(2));
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  // Delay 2 <= K=4: on time; failure-free; all-commit => must commit.
  ASSERT_TRUE(sim::is_on_time(result.trace, params.k));
  EXPECT_EQ(result.agreed_decision(), Decision::kCommit);
}

TEST(Commit, CoordinatorCrashBeforeGoBlocksQuietly) {
  // If no nonfaulty processor ever receives a message the protocol may block:
  // the problem statement exempts exactly this case (§2.4).
  SystemParams params{.n = 5, .t = 2, .k = 1};
  std::vector<adversary::CrashPlan> plans{{.victim = 0, .at_clock = 1, .suppress_sends_to = {}}};
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::move(plans));
  const auto result = run_commit(params, {1, 1, 1, 1, 1}, 23, std::move(adv),
                                 /*max_events=*/10'000);
  EXPECT_NE(result.status, RunStatus::kAllDecided);
  for (const auto& d : result.decisions) EXPECT_FALSE(d.has_value());
}

TEST(Commit, CoordinatorCrashAfterPartialGoStillTerminates) {
  // The coordinator reaches some processors before dying; the GO piggyback
  // spreads from there and the survivors finish the protocol.
  SystemParams params{.n = 5, .t = 2, .k = 2};
  adversary::CrashPlan plan;
  plan.victim = 0;
  plan.at_clock = 1;
  plan.suppress_sends_to = {3, 4};  // partial GO broadcast
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::vector<adversary::CrashPlan>{plan});
  const auto result = run_commit(params, {1, 1, 1, 1, 1}, 24, std::move(adv));
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_TRUE(agreement_holds(result));
  // The coordinator crashed, so the run is not failure-free: either outcome
  // is legal, but it must be unanimous among the four survivors.
  int decided = 0;
  for (ProcId p = 1; p < 5; ++p) {
    if (result.decisions[static_cast<size_t>(p)].has_value()) ++decided;
  }
  EXPECT_EQ(decided, 4);
}

// --- rounds (Theorem 10) ------------------------------------------------------------

TEST(Commit, DecidesWithinModestAsynchronousRounds) {
  // Theorem 10: 14 expected asynchronous rounds. Per-run we allow headroom;
  // the bench measures the expectation tightly.
  SystemParams params{.n = 5, .t = 2, .k = 2};
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    auto result = run_commit(params, {1, 1, 1, 1, 1}, seed,
                             adversary::make_random_adversary(seed, 3));
    ASSERT_EQ(result.status, RunStatus::kAllDecided);
    sim::RoundAnalyzer rounds(result.trace, params.k);
    const auto max_round = rounds.max_decision_round();
    ASSERT_TRUE(max_round.has_value());
    EXPECT_LE(*max_round, 30) << "seed " << seed;
  }
}

TEST(Commit, QuorumStallerCannotPreventDecision) {
  SystemParams params{.n = 7, .t = 3, .k = 2};
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto adv = std::make_unique<adversary::QuorumStallAdversary>(params.t, 64, seed);
    const auto result = run_commit(params, {1, 1, 1, 1, 1, 1, 1}, seed, std::move(adv));
    ASSERT_EQ(result.status, RunStatus::kAllDecided) << "seed " << seed;
    EXPECT_TRUE(agreement_holds(result));
  }
}

// --- options validation ----------------------------------------------------------------

TEST(Commit, RejectsInvalidVote) {
  CommitProcess::Options options;
  options.params = {.n = 3, .t = 1, .k = 1};
  options.initial_vote = 2;
  EXPECT_THROW(CommitProcess proc(options), CheckFailure);
}

TEST(Commit, RejectsCoinCountBelowN) {
  CommitProcess::Options options;
  options.params = {.n = 5, .t = 2, .k = 1};
  options.coin_count = 3;
  EXPECT_THROW(CommitProcess proc(options), CheckFailure);
}

TEST(Commit, FleetRequiresVotePerProcessor) {
  SystemParams params{.n = 3, .t = 1, .k = 1};
  EXPECT_THROW(make_commit_fleet(params, {1, 1}), CheckFailure);
}

TEST(Commit, ExtraCoinsAccepted) {
  // Remark (3): the coordinator may flip more than n coins.
  SystemParams params{.n = 3, .t = 1, .k = 1};
  Simulator sim({.seed = 31},
                make_commit_fleet(params, {1, 1, 1}, HaltPolicy::kDecidedBroadcast,
                                  /*coin_count=*/12),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  EXPECT_EQ(result.agreed_decision(), Decision::kCommit);
}

// --- full condition check over a matrix ------------------------------------------------

class CommitConditionsSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(CommitConditionsSweep, AllThreeConditionsHold) {
  const auto [seed, vote_pattern] = GetParam();
  SystemParams params{.n = 5, .t = 2, .k = 3};
  std::vector<int> votes(5);
  for (int i = 0; i < 5; ++i) votes[static_cast<size_t>(i)] = (vote_pattern >> i) & 1;
  const auto result = run_commit(
      params, votes, seed,
      adversary::make_mostly_on_time_adversary(seed, params.k, 0.1, 12));
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_NO_THROW(check_commit_conditions(result, votes, params.k));
}

INSTANTIATE_TEST_SUITE_P(VotePatterns, CommitConditionsSweep,
                         ::testing::Combine(::testing::Range<uint64_t>(1, 6),
                                            ::testing::Values(0, 1, 9, 21, 30, 31)));

// --- metrics glue ------------------------------------------------------------------------

TEST(Metrics, MeasureRunReportsCoreQuantities) {
  SystemParams params{.n = 5, .t = 2, .k = 2};
  const auto result = run_commit(params, {1, 1, 1, 1, 1}, 41,
                                 adversary::make_on_time_adversary());
  const auto m = metrics::measure_run(result, params.k);
  EXPECT_TRUE(m.all_decided);
  EXPECT_EQ(m.outcome, Decision::kCommit);
  EXPECT_GT(m.max_decision_round, 0);
  EXPECT_GT(m.max_decision_clock, 0);
  EXPECT_LE(m.max_decision_clock, 8 * params.k);
  EXPECT_EQ(m.late_messages, 0);
  EXPECT_GT(m.messages_sent, 0);
}

}  // namespace
}  // namespace rcommit::protocol
