// Exhaustive crash-point torture over the durability layer: every reachable
// WAL injection site of a small multi-transaction workload is hit with every
// WAL fault kind, and the recovered state must equal the reference state
// machine's committed-prefix view (SQLite crash-test style).
//
// The tier-1 run sweeps one seed; configuring with -DRCOMMIT_LONG_TESTS=ON
// adds a seed-matrix variant over larger workloads (CI's swarm-smoke job).
#include <gtest/gtest.h>

#include <filesystem>

#include "faultinject/torture.h"

namespace rcommit::faultinject {
namespace {

namespace fs = std::filesystem;

class WalTortureFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = fs::temp_directory_path() /
           ("rcommit_wal_torture_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

void expect_clean_sweep(const SweepResult& result) {
  EXPECT_GT(result.sites, 0);
  EXPECT_EQ(result.crash_points, result.sites * 5);  // five WAL fault kinds
  for (const auto& failure : result.failures) {
    ADD_FAILURE() << "recovery not equivalent under plan:\n"
                  << failure.plan.serialize() << "result:\n"
                  << failure.result.serialize();
  }
}

TEST_F(WalTortureFixture, ExhaustiveSweepRecoversEquivalently) {
  TortureOptions options;
  options.scratch_dir = dir_;
  expect_clean_sweep(run_wal_sweep(options, {.threads = 2}));
}

TEST_F(WalTortureFixture, CrashPointIsReproducibleFromSeedAndSite) {
  // The acceptance bar: a crash point is a pure function of (seed, site).
  TortureOptions first = {.seed = 7, .scratch_dir = dir_ / "a"};
  TortureOptions second = {.seed = 7, .scratch_dir = dir_ / "b"};
  const FaultPlan plan = FaultPlan::wal_fault_at(5, FaultKind::kTornWrite, 99);
  EXPECT_EQ(run_crash_point(first, plan), run_crash_point(second, plan));

  TortureOptions other_seed = {.seed = 8, .scratch_dir = dir_ / "c"};
  const auto different = run_crash_point(other_seed, plan);
  const auto baseline = run_crash_point(first, plan);
  // Different seed, different workload — the digest should move (and if the
  // workloads happened to collide, the comparison below still documents that
  // only the seed may move it).
  EXPECT_TRUE(different.ok());
  EXPECT_TRUE(baseline.ok());
}

TEST_F(WalTortureFixture, EnumerationIsStable) {
  TortureOptions options;
  options.scratch_dir = dir_;
  const auto first = enumerate_sites(options);
  const auto second = enumerate_sites(options);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].site, second[i].site);
    EXPECT_EQ(first[i].wal_name, second[i].wal_name);
    EXPECT_EQ(first[i].record_type, second[i].record_type);
    EXPECT_EQ(first[i].frame_size, second[i].frame_size);
  }
}

#ifdef RCOMMIT_LONG_TESTS
TEST_F(WalTortureFixture, SeedMatrixSweep) {
  // The long-test matrix: more seeds, bigger workloads, full fan-out.
  for (const uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    TortureOptions options;
    options.seed = seed;
    options.txns = 6;
    options.fanout = 3;
    options.scratch_dir = dir_ / ("seed-" + std::to_string(seed));
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_clean_sweep(run_wal_sweep(options, {.threads = 4}));
  }
}
#endif  // RCOMMIT_LONG_TESTS

}  // namespace
}  // namespace rcommit::faultinject
