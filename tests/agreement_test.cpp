// Tests for Protocol 1 (the agreement subroutine): the paper's Lemmas 1-3,
// validity, agreement across adversaries and seeds, coin behaviour, and the
// halt policies.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "adversary/adaptive.h"
#include "adversary/basic.h"
#include "adversary/crash.h"
#include "common/rng.h"
#include "protocol/agreement.h"
#include "protocol/invariants.h"
#include "sim/simulator.h"

namespace rcommit::protocol {
namespace {

using sim::RunResult;
using sim::RunStatus;
using sim::Simulator;

std::vector<uint8_t> shared_coins(uint64_t seed, int count) {
  RandomTape tape(seed);
  return tape.flip_bits(count);
}

std::vector<std::unique_ptr<sim::Process>> agreement_fleet(
    const SystemParams& params, const std::vector<int>& inputs,
    const std::vector<uint8_t>& coins,
    HaltPolicy halt = HaltPolicy::kDecidedBroadcast) {
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int i = 0; i < params.n; ++i) {
    AgreementProcess::Options options;
    options.params = params;
    options.initial_value = inputs[static_cast<size_t>(i)];
    options.coins = coins;
    options.halt = halt;
    fleet.push_back(std::make_unique<AgreementProcess>(std::move(options)));
  }
  return fleet;
}

RunResult run_agreement(const SystemParams& params, const std::vector<int>& inputs,
                        uint64_t seed, std::unique_ptr<sim::Adversary> adv,
                        HaltPolicy halt = HaltPolicy::kDecidedBroadcast) {
  Simulator sim({.seed = seed},
                agreement_fleet(params, inputs, shared_coins(seed ^ 0x5eed, params.n), halt),
                std::move(adv));
  return sim.run();
}

// --- Lemma 1: unanimous local values decide within the stage ------------------

TEST(Agreement, UnanimousOneDecidesOne) {
  SystemParams params{.n = 5, .t = 2, .k = 1};
  const auto result = run_agreement(params, {1, 1, 1, 1, 1}, 1,
                                    adversary::make_on_time_adversary());
  EXPECT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_EQ(result.agreed_decision(), Decision::kCommit);
}

TEST(Agreement, UnanimousZeroDecidesZero) {
  SystemParams params{.n = 5, .t = 2, .k = 1};
  const auto result = run_agreement(params, {0, 0, 0, 0, 0}, 2,
                                    adversary::make_on_time_adversary());
  EXPECT_EQ(result.agreed_decision(), Decision::kAbort);
}

TEST(Agreement, UnanimousDecidesInStageOne) {
  SystemParams params{.n = 7, .t = 3, .k = 1};
  Simulator sim({.seed = 3},
                agreement_fleet(params, {1, 1, 1, 1, 1, 1, 1}, shared_coins(9, 7)),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& proc : sim.processes()) {
    const auto& core = dynamic_cast<const AgreementProcess&>(*proc).core();
    EXPECT_EQ(core.decision_stage(), 1) << "Lemma 1: decide by end of stage 1";
  }
}

// --- mixed inputs: agreement and termination -----------------------------------

class AgreementSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, int>> {};

TEST_P(AgreementSweep, MixedInputsAgreeUnderRandomTiming) {
  const auto [n, seed, max_delay] = GetParam();
  SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  RandomTape input_rng(seed * 31 + 7);
  std::vector<int> inputs(static_cast<size_t>(n));
  for (auto& v : inputs) v = input_rng.flip();
  const auto result =
      run_agreement(params, inputs, seed,
                    adversary::make_random_adversary(seed + 1, max_delay));
  ASSERT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_TRUE(agreement_holds(result));
  EXPECT_TRUE(agreement_validity_holds(result, inputs));
  EXPECT_TRUE(result.agreed_decision().has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AgreementSweep,
    ::testing::Combine(::testing::Values(3, 4, 5, 7, 9),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                       ::testing::Values(1, 3, 6)));

// --- Lemma 3: deciders are within one stage of each other ----------------------

TEST(Agreement, DecisionStagesWithinOne) {
  SystemParams params{.n = 5, .t = 2, .k = 1};
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    std::vector<int> inputs = {1, 0, 1, 0, 1};
    Simulator sim({.seed = seed},
                  agreement_fleet(params, inputs, shared_coins(seed, params.n),
                                  HaltPolicy::kRunForever),
                  adversary::make_random_adversary(seed * 13, 4));
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided);
    int min_stage = INT32_MAX;
    int max_stage = 0;
    for (const auto& proc : sim.processes()) {
      const auto& core = dynamic_cast<const AgreementProcess&>(*proc).core();
      ASSERT_TRUE(core.decided());
      min_stage = std::min(min_stage, core.decision_stage());
      max_stage = std::max(max_stage, core.decision_stage());
    }
    EXPECT_LE(max_stage - min_stage, 1)
        << "Lemma 3 violated at seed " << seed;
  }
}

// --- crash tolerance ------------------------------------------------------------

TEST(Agreement, ToleratesTCrashes) {
  SystemParams params{.n = 7, .t = 3, .k = 1};
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<int> inputs = {1, 1, 0, 0, 1, 0, 1};
    auto plans = adversary::random_crash_plans(seed, params.n, params.t,
                                               /*max_clock=*/20);
    auto adv = std::make_unique<adversary::CrashAdversary>(
        adversary::make_random_adversary(seed, 3), std::move(plans));
    Simulator sim({.seed = seed},
                  agreement_fleet(params, inputs, shared_coins(seed, params.n)),
                  std::move(adv));
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided) << "seed " << seed;
    EXPECT_TRUE(agreement_holds(result));
    EXPECT_TRUE(agreement_validity_holds(result, inputs));
  }
}

TEST(Agreement, BlocksGracefullyBeyondT) {
  // Crash t+1 of n=2t+1 processors immediately: the survivors cannot form a
  // quorum and must wait forever — no wrong answers (Theorem 11 spirit).
  SystemParams params{.n = 5, .t = 2, .k = 1};
  std::vector<adversary::CrashPlan> plans;
  for (ProcId v = 0; v < 3; ++v) plans.push_back({.victim = v, .at_clock = 1, .suppress_sends_to = {}});
  auto adv = std::make_unique<adversary::CrashAdversary>(
      adversary::make_on_time_adversary(), std::move(plans));
  Simulator sim({.seed = 4, .max_events = 5000},
                agreement_fleet(params, {1, 1, 1, 0, 0}, shared_coins(4, 5)),
                std::move(adv));
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kEventLimit);
  for (const auto& d : result.decisions) EXPECT_FALSE(d.has_value());
}

// --- adaptive adversary -----------------------------------------------------------

TEST(Agreement, TerminatesAgainstQuorumStaller) {
  SystemParams params{.n = 7, .t = 3, .k = 1};
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<int> inputs = {1, 0, 1, 0, 1, 0, 1};
    auto adv = std::make_unique<adversary::QuorumStallAdversary>(
        params.t, /*slow_lag=*/64, seed);
    Simulator sim({.seed = seed},
                  agreement_fleet(params, inputs, shared_coins(seed, params.n)),
                  std::move(adv));
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided) << "seed " << seed;
    EXPECT_TRUE(agreement_holds(result));
  }
}

// --- coins ------------------------------------------------------------------------

TEST(Agreement, SharedCoinListKeepsStagesSmall) {
  // With >= n shared coins, expected stages <= 4 (Lemma 8); assert a loose
  // per-run cap over many seeds under benign timing.
  SystemParams params{.n = 5, .t = 2, .k = 1};
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    std::vector<int> inputs = {1, 0, 1, 0, 1};
    Simulator sim({.seed = seed},
                  agreement_fleet(params, inputs, shared_coins(seed, params.n)),
                  adversary::make_random_adversary(seed, 2));
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided);
    for (const auto& proc : sim.processes()) {
      const auto& core = dynamic_cast<const AgreementProcess&>(*proc).core();
      EXPECT_LE(core.decision_stage(), 12) << "seed " << seed;
    }
  }
}

TEST(Agreement, EmptyCoinListStillTerminatesBenignly) {
  // Local-coin Ben-Or under benign timing: terminates (no adversarial split).
  SystemParams params{.n = 5, .t = 2, .k = 1};
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<int> inputs = {1, 0, 1, 0, 1};
    Simulator sim({.seed = seed}, agreement_fleet(params, inputs, {}),
                  adversary::make_random_adversary(seed, 2));
    const auto result = sim.run();
    ASSERT_EQ(result.status, RunStatus::kAllDecided) << "seed " << seed;
    EXPECT_TRUE(agreement_holds(result));
  }
}

// --- halt policies -----------------------------------------------------------------

TEST(Agreement, DecidedBroadcastHaltsEveryone) {
  SystemParams params{.n = 5, .t = 2, .k = 1};
  Simulator sim({.seed = 5, .stop_on_all_decided = false},
                agreement_fleet(params, {1, 0, 1, 0, 1}, shared_coins(5, 5),
                                HaltPolicy::kDecidedBroadcast),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& proc : sim.processes()) EXPECT_TRUE(proc->halted());
}

TEST(Agreement, RunForeverNeverHalts) {
  SystemParams params{.n = 3, .t = 1, .k = 1};
  Simulator sim({.seed = 6},
                agreement_fleet(params, {1, 1, 0}, shared_coins(6, 3),
                                HaltPolicy::kRunForever),
                adversary::make_on_time_adversary());
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& proc : sim.processes()) EXPECT_FALSE(proc->halted());
}

// --- core-level argument validation --------------------------------------------------

TEST(AgreementCore, RejectsMissingBroadcastHook) {
  AgreementCore::Config config;
  config.params = {.n = 3, .t = 1, .k = 1};
  config.broadcast = nullptr;
  EXPECT_THROW(AgreementCore core(std::move(config)), CheckFailure);
}

TEST(AgreementProcess, ExposesStageProgress) {
  SystemParams params{.n = 3, .t = 1, .k = 1};
  Simulator sim({.seed = 8},
                agreement_fleet(params, {1, 1, 1}, shared_coins(8, 3)),
                adversary::make_on_time_adversary());
  sim.run();
  // At least one processor assembled its own quorum and completed a stage;
  // others may have decided via the DECIDED short-circuit with zero stages.
  int max_completed = 0;
  for (const auto& proc : sim.processes()) {
    const auto& core = dynamic_cast<const AgreementProcess&>(*proc).core();
    EXPECT_TRUE(core.started());
    max_completed = std::max(max_completed, core.stages_completed());
  }
  EXPECT_GE(max_completed, 1);
}

}  // namespace
}  // namespace rcommit::protocol
