// Tests for automatic schedule shrinking: synthetic oracles with a known
// minimal core, invalid-candidate handling, and the end-to-end pipeline on
// the deliberately-broken protocol (ISSUE acceptance: shrunken
// counterexample ≤ 25% of the recorded schedule).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "common/check.h"
#include "swarm/artifacts.h"
#include "swarm/matrix.h"
#include "swarm/runner.h"
#include "swarm/shrink.h"
#include "swarm/swarm.h"

namespace rcommit::swarm {
namespace {

sim::RecordedSchedule round_robin_schedule(int n, int steps_each) {
  sim::RecordedSchedule schedule;
  for (int s = 0; s < steps_each; ++s) {
    for (int p = 0; p < n; ++p) {
      sim::Action action;
      action.proc = p;
      schedule.actions.push_back(action);
    }
  }
  return schedule;
}

TEST(Shrink, AlwaysViolatingOracleShrinksToOneAction) {
  const auto original = round_robin_schedule(/*n=*/5, /*steps_each=*/40);
  ShrinkStats stats;
  const auto shrunk = shrink_schedule(
      original,
      [](const sim::RecordedSchedule& candidate) {
        return candidate.actions.empty() ? CandidateOutcome::kNoViolation
                                         : CandidateOutcome::kViolates;
      },
      {}, &stats);
  // Everything is removable except one action: the minimum a non-empty
  // schedule can be.
  EXPECT_EQ(shrunk.actions.size(), 1u);
  EXPECT_EQ(stats.original_actions, 200u);
  EXPECT_EQ(stats.shrunk_actions, 1u);
  EXPECT_GT(stats.evals, 0);
}

TEST(Shrink, FindsKnownMinimalCore) {
  // The violation needs >= 3 actions of processor 2 and >= 1 of processor 4.
  const auto original = round_robin_schedule(/*n=*/6, /*steps_each=*/30);
  const auto oracle = [](const sim::RecordedSchedule& candidate) {
    int p2 = 0;
    int p4 = 0;
    for (const auto& action : candidate.actions) {
      if (action.proc == 2) ++p2;
      if (action.proc == 4) ++p4;
    }
    return (p2 >= 3 && p4 >= 1) ? CandidateOutcome::kViolates
                                : CandidateOutcome::kNoViolation;
  };
  const auto shrunk = shrink_schedule(original, oracle);
  EXPECT_EQ(shrunk.actions.size(), 4u);
  EXPECT_EQ(oracle(shrunk), CandidateOutcome::kViolates);
}

TEST(Shrink, ShrunkScheduleIsOneMinimal) {
  const auto original = round_robin_schedule(/*n=*/4, /*steps_each=*/25);
  const auto oracle = [](const sim::RecordedSchedule& candidate) {
    int p1 = 0;
    for (const auto& action : candidate.actions) {
      if (action.proc == 1) ++p1;
    }
    return p1 >= 5 ? CandidateOutcome::kViolates : CandidateOutcome::kNoViolation;
  };
  const auto shrunk = shrink_schedule(original, oracle);
  ASSERT_EQ(oracle(shrunk), CandidateOutcome::kViolates);
  // Removing any single action must break the violation (local minimality).
  for (size_t i = 0; i < shrunk.actions.size(); ++i) {
    sim::RecordedSchedule candidate;
    for (size_t j = 0; j < shrunk.actions.size(); ++j) {
      if (j != i) candidate.actions.push_back(shrunk.actions[j]);
    }
    EXPECT_NE(oracle(candidate), CandidateOutcome::kViolates);
  }
}

TEST(Shrink, InvalidCandidatesAreSkippedNotAccepted) {
  // Any candidate that does not start with processor 0's action is
  // "divergent". The shrinker must never return an invalid schedule.
  const auto original = round_robin_schedule(/*n=*/3, /*steps_each=*/10);
  const auto oracle = [](const sim::RecordedSchedule& candidate) {
    if (candidate.actions.empty() || candidate.actions[0].proc != 0) {
      return CandidateOutcome::kInvalid;
    }
    return CandidateOutcome::kViolates;
  };
  const auto shrunk = shrink_schedule(original, oracle);
  EXPECT_EQ(oracle(shrunk), CandidateOutcome::kViolates);
  EXPECT_LT(shrunk.actions.size(), original.actions.size());
}

TEST(Shrink, NonViolatingOriginalIsReturnedUnchanged) {
  const auto original = round_robin_schedule(/*n=*/3, /*steps_each=*/5);
  ShrinkStats stats;
  const auto shrunk = shrink_schedule(
      original,
      [](const sim::RecordedSchedule&) { return CandidateOutcome::kNoViolation; }, {},
      &stats);
  EXPECT_EQ(shrunk.actions.size(), original.actions.size());
  EXPECT_EQ(stats.evals, 1);
}

TEST(Shrink, RespectsEvalBudget) {
  const auto original = round_robin_schedule(/*n=*/8, /*steps_each=*/50);
  ShrinkStats stats;
  ShrinkOptions options;
  options.max_evals = 10;
  (void)shrink_schedule(
      original,
      [](const sim::RecordedSchedule& candidate) {
        return candidate.actions.empty() ? CandidateOutcome::kNoViolation
                                         : CandidateOutcome::kViolates;
      },
      options, &stats);
  EXPECT_LE(stats.evals, options.max_evals + 1);
}

// --- end to end: broken protocol through the real pipeline ------------------

TEST(ShrinkEndToEnd, BrokenProtocolShrinksToQuarterOrLess) {
  SwarmOptions options;
  options.matrix.protocols = {ProtocolKind::kBroken};
  options.matrix.adversaries = {AdversaryKind::kRandom};
  options.matrix.ns = {5, 7};
  options.matrix.seeds_per_cell = 2;
  options.artifacts_dir =
      (std::filesystem::path(testing::TempDir()) / "swarm-shrink-e2e").string();

  const auto summary = run_swarm(options);
  ASSERT_EQ(summary.violations, summary.runs_executed);
  ASSERT_FALSE(summary.violation_reports.empty());

  for (const auto& report : summary.violation_reports) {
    EXPECT_GT(report.original_actions, 0u);
    // ISSUE acceptance: shrunken counterexample ≤ 25% of the recording.
    EXPECT_LE(report.shrunk_actions * 4, report.original_actions)
        << report.config.id() << ": " << report.original_actions << " -> "
        << report.shrunk_actions;

    // The artifact round-trips and its shrunken schedule still reproduces
    // the violation on replay.
    ASSERT_FALSE(report.artifact_path.empty());
    const auto artifact = load_artifact(report.artifact_path);
    EXPECT_EQ(artifact.config.id(), report.config.id());
    EXPECT_EQ(artifact.schedule.actions.size(), report.shrunk_actions);
    EXPECT_EQ(artifact.original_schedule.actions.size(), report.original_actions);
    EXPECT_TRUE(replay_still_violates(artifact.config, artifact.schedule));
  }
}

TEST(ShrinkEndToEnd, ShrunkCounterexampleIsStillViolatingAfterReplayRoundTrip) {
  CellConfig config;
  config.protocol = ProtocolKind::kBroken;
  config.adversary = AdversaryKind::kRandom;
  config.n = 5;
  config.t = 2;
  config.seed = 99;
  const auto outcome = run_cell(config);
  ASSERT_TRUE(outcome.violation);

  const auto oracle = [&](const sim::RecordedSchedule& candidate) {
    try {
      const auto result = replay_schedule(config, candidate);
      return gate_violation(config, cell_votes(config), result).empty()
                 ? CandidateOutcome::kNoViolation
                 : CandidateOutcome::kViolates;
    } catch (const CheckFailure&) {
      return CandidateOutcome::kInvalid;
    }
  };
  const auto shrunk = shrink_schedule(outcome.schedule, oracle);

  // Serialize → deserialize → replay: the text form preserves the violation.
  const auto reloaded = sim::RecordedSchedule::deserialize(shrunk.serialize());
  EXPECT_TRUE(replay_still_violates(config, reloaded));
  EXPECT_LE(shrunk.actions.size() * 4, outcome.schedule.actions.size());
}

}  // namespace
}  // namespace rcommit::swarm
