// Tests for the benchkit library behind tools/bench_report and
// tools/bench_compare: merging per-bench artifacts, regenerating the
// EXPERIMENTS.md block, and the regression-gate semantics.
#include <gtest/gtest.h>

#include <algorithm>

#include "benchkit.h"
#include "common/check.h"
#include "common/json.h"
#include "metrics/report.h"

namespace rcommit {
namespace {

metrics::BenchResult make_result(const std::string& experiment,
                                 const std::string& bench,
                                 std::vector<metrics::ClaimRow> claims,
                                 double total_seconds = 1.0) {
  metrics::BenchResult r;
  r.experiment_id = experiment;
  r.bench = bench;
  r.title = bench + " title";
  r.quick = true;
  r.claims = std::move(claims);
  r.timings.push_back({"total", total_seconds, 1, 0});
  return r;
}

// --- merge ------------------------------------------------------------------------

TEST(BenchkitMerge, OrdersExperimentsAndCountsClaims) {
  // Deliberately shuffled input, including a non-E id that must sort last.
  std::vector<metrics::BenchResult> results = {
      make_result("micro", "bench_micro", {}),
      make_result("E10", "bench_halt", {{"X", "p", "m", true}}),
      make_result("E2", "bench_rounds",
                  {{"C3", "p", "m", true}, {"C2", "p", "m", false}}),
  };
  const auto merged = benchkit::merge_to_json(results);
  const auto v = json::parse(merged);

  EXPECT_EQ(v.at("schema_version").as_int(), metrics::kBenchSchemaVersion);
  EXPECT_EQ(v.at("claims_total").as_int(), 3);
  EXPECT_EQ(v.at("claims_held").as_int(), 2);
  ASSERT_EQ(v.at("experiments").size(), 3u);
  // E2 before E10 (numeric, not lexicographic), "micro" after every E-row.
  EXPECT_EQ(v.at("experiments").at(0).at("experiment").as_string(), "E2");
  EXPECT_EQ(v.at("experiments").at(1).at("experiment").as_string(), "E10");
  EXPECT_EQ(v.at("experiments").at(2).at("experiment").as_string(), "micro");
}

TEST(BenchkitMerge, DuplicateExperimentIdRejected) {
  std::vector<metrics::BenchResult> results = {
      make_result("E1", "bench_a", {}),
      make_result("E1", "bench_b", {}),
  };
  EXPECT_THROW(benchkit::merge_to_json(results), CheckFailure);
}

TEST(BenchkitMerge, ParseRoundTrip) {
  std::vector<metrics::BenchResult> results = {
      make_result("E1", "bench_stages", {{"C1", "<= 4", "2.25", true}}),
      make_result("E5", "bench_validity", {{"C9", "always", "0 bad", true}}),
  };
  const auto restored = benchkit::parse_merged_json(benchkit::merge_to_json(results));
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored[0].experiment_id, "E1");
  EXPECT_EQ(restored[1].bench, "bench_validity");
  ASSERT_EQ(restored[0].claims.size(), 1u);
  EXPECT_TRUE(restored[0].claims[0].holds);
}

TEST(BenchkitMerge, ParseRejectsWrongSchemaVersion) {
  EXPECT_THROW(
      benchkit::parse_merged_json(
          "{\"schema_version\":99,\"claims_total\":0,\"claims_held\":0,"
          "\"experiments\":[]}"),
      CheckFailure);
}

// --- render + splice --------------------------------------------------------------

TEST(BenchkitRender, ClaimLedgerAndTimingSummary) {
  std::vector<metrics::BenchResult> results = {
      make_result("E1", "bench_stages",
                  {{"C1", "<= 4 stages", "worst mean = 2.25", true},
                   {"C6", "coins don't hurt", "1.97 vs 9.99", false}}),
  };
  const auto block = benchkit::render_experiments_block(results);
  EXPECT_NE(block.find("1/2 claims hold"), std::string::npos);
  EXPECT_NE(block.find("worst mean = 2.25"), std::string::npos);
  EXPECT_NE(block.find("OK"), std::string::npos);
  EXPECT_NE(block.find("MISMATCH"), std::string::npos);
  EXPECT_NE(block.find("Timing summary"), std::string::npos);
  EXPECT_NE(block.find("bench_stages"), std::string::npos);
}

TEST(BenchkitSplice, ReplacesOnlyTheMarkedBlock) {
  const std::string doc = std::string("before\n\n") + benchkit::kGeneratedBegin +
                          "\nold content\n" + benchkit::kGeneratedEnd +
                          "\n\nafter\n";
  const auto out = benchkit::splice_generated_block(doc, "NEW BLOCK");
  EXPECT_NE(out.find("before"), std::string::npos);
  EXPECT_NE(out.find("after"), std::string::npos);
  EXPECT_NE(out.find("NEW BLOCK"), std::string::npos);
  EXPECT_EQ(out.find("old content"), std::string::npos);
  // Markers survive, so a second splice still works.
  const auto again = benchkit::splice_generated_block(out, "THIRD");
  EXPECT_NE(again.find("THIRD"), std::string::npos);
  EXPECT_EQ(again.find("NEW BLOCK"), std::string::npos);
}

TEST(BenchkitSplice, MissingMarkersRejected) {
  EXPECT_THROW(benchkit::splice_generated_block("no markers here", "x"),
               CheckFailure);
  EXPECT_THROW(benchkit::splice_generated_block(
                   std::string(benchkit::kGeneratedBegin) + "\nunclosed", "x"),
               CheckFailure);
}

// --- compare (the regression gate) ------------------------------------------------

bool mentions(const std::vector<std::string>& lines, const std::string& needle) {
  return std::any_of(lines.begin(), lines.end(), [&](const std::string& line) {
    return line.find(needle) != std::string::npos;
  });
}

TEST(BenchkitCompare, IdenticalRunsPass) {
  const std::vector<metrics::BenchResult> results = {
      make_result("E1", "bench_stages", {{"C1", "p", "m", true}}),
  };
  const auto report = benchkit::compare(results, results, {});
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.regressions.empty());
}

TEST(BenchkitCompare, FlippedClaimIsRegression) {
  const std::vector<metrics::BenchResult> baseline = {
      make_result("E1", "bench_stages", {{"C1", "p", "ok", true}}),
  };
  const std::vector<metrics::BenchResult> current = {
      make_result("E1", "bench_stages", {{"C1", "p", "now 9.9", false}}),
  };
  const auto report = benchkit::compare(baseline, current, {});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report.regressions, "E1/C1"));
  EXPECT_TRUE(mentions(report.regressions, "MISMATCH"));
}

TEST(BenchkitCompare, MissingExperimentAndClaimAreRegressions) {
  const std::vector<metrics::BenchResult> baseline = {
      make_result("E1", "bench_stages", {{"C1", "p", "m", true}}),
      make_result("E2", "bench_rounds", {{"C3", "p", "m", true}}),
  };
  const std::vector<metrics::BenchResult> current = {
      make_result("E1", "bench_stages", {}),  // claim C1 gone
  };
  const auto report = benchkit::compare(baseline, current, {});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report.regressions, "claim E1/C1"));
  EXPECT_TRUE(mentions(report.regressions, "experiment E2"));
}

TEST(BenchkitCompare, TimingBeyondToleranceFailsWithinPasses) {
  const std::vector<metrics::BenchResult> baseline = {
      make_result("E1", "bench_stages", {}, 1.0),
  };
  const std::vector<metrics::BenchResult> slow = {
      make_result("E1", "bench_stages", {}, 1.3),
  };
  benchkit::CompareOptions options;
  options.timing_tolerance = 0.25;

  EXPECT_FALSE(benchkit::compare(baseline, slow, options).ok());
  // 1.3x growth passes a looser gate, and 1.2x passes the default one.
  options.timing_tolerance = 0.5;
  EXPECT_TRUE(benchkit::compare(baseline, slow, options).ok());
  const std::vector<metrics::BenchResult> mild = {
      make_result("E1", "bench_stages", {}, 1.2),
  };
  EXPECT_TRUE(benchkit::compare(baseline, mild, {}).ok());
}

TEST(BenchkitCompare, NoTimingSkipsWallClock) {
  const std::vector<metrics::BenchResult> baseline = {
      make_result("E1", "bench_stages", {{"C1", "p", "m", true}}, 1.0),
  };
  const std::vector<metrics::BenchResult> slow = {
      make_result("E1", "bench_stages", {{"C1", "p", "m", true}}, 10.0),
  };
  benchkit::CompareOptions options;
  options.check_timing = false;
  EXPECT_TRUE(benchkit::compare(baseline, slow, options).ok());
}

TEST(BenchkitCompare, ImprovementsAreNotesNotRegressions) {
  const std::vector<metrics::BenchResult> baseline = {
      make_result("E1", "bench_stages", {{"C1", "p", "bad", false}}),
  };
  const std::vector<metrics::BenchResult> current = {
      make_result("E1", "bench_stages", {{"C1", "p", "good", true}}),
      make_result("E2", "bench_rounds", {{"C3", "p", "m", true}}),
  };
  const auto report = benchkit::compare(baseline, current, {});
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(mentions(report.notes, "E1/C1"));
  EXPECT_TRUE(mentions(report.notes, "new experiment E2"));
}

}  // namespace
}  // namespace rcommit
