// Round-trip tests for the deterministic JSON writer/parser pair and the
// BenchResult serialization built on it. The writer's byte-stability contract
// (key order, "%.4f" doubles) is what makes BENCH_RESULTS.json diffable; the
// parser is the read side the benchkit tools depend on.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/json.h"
#include "metrics/report.h"

namespace rcommit {
namespace {

// --- writer -> parser round trips -------------------------------------------------

TEST(JsonWriter, ObjectArrayScalars) {
  json::JsonWriter w;
  w.begin_object();
  w.key("name").value("bench");
  w.key("count").value(42);
  w.key("rate").value(0.25);
  w.key("on").value(true);
  w.key("items");
  w.begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.end_object();

  EXPECT_EQ(w.str(),
            "{\"name\":\"bench\",\"count\":42,\"rate\":0.2500,\"on\":true,"
            "\"items\":[1,2]}");

  const auto v = json::parse(w.str());
  EXPECT_EQ(v.at("name").as_string(), "bench");
  EXPECT_EQ(v.at("count").as_int(), 42);
  EXPECT_DOUBLE_EQ(v.at("rate").as_double(), 0.25);
  EXPECT_TRUE(v.at("on").as_bool());
  ASSERT_EQ(v.at("items").size(), 2u);
  EXPECT_EQ(v.at("items").at(1).as_int(), 2);
}

TEST(JsonWriter, EscapedStringsSurviveRoundTrip) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01 end";
  json::JsonWriter w;
  w.begin_object();
  w.key("s").value(nasty);
  w.end_object();
  EXPECT_EQ(json::parse(w.str()).at("s").as_string(), nasty);
}

TEST(JsonWriter, RawSplicesNestedDocument) {
  json::JsonWriter inner;
  inner.begin_object();
  inner.key("x").value(1);
  inner.end_object();

  json::JsonWriter outer;
  outer.begin_object();
  outer.key("list");
  outer.begin_array();
  outer.raw(inner.str());
  outer.raw(inner.str());  // raw() must emit the separating comma too
  outer.end_array();
  outer.end_object();

  EXPECT_EQ(outer.str(), "{\"list\":[{\"x\":1},{\"x\":1}]}");
  EXPECT_EQ(json::parse(outer.str()).at("list").at(1).at("x").as_int(), 1);
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{\"a\":}"), CheckFailure);
  EXPECT_THROW(json::parse("{\"a\":1} trailing"), CheckFailure);
  EXPECT_THROW(json::parse("[1,2"), CheckFailure);
  EXPECT_THROW(json::parse(""), CheckFailure);
}

TEST(JsonParser, TypedAccessorsCheckKinds) {
  const auto v = json::parse("{\"n\":1.5,\"s\":\"x\"}");
  EXPECT_THROW((void)v.at("s").as_double(), CheckFailure);
  EXPECT_THROW((void)v.at("n").as_int(), CheckFailure);  // not integral
  EXPECT_THROW((void)v.at("missing"), CheckFailure);
  EXPECT_EQ(v.get_string("missing", "d"), "d");
}

// --- BenchResult serialization ----------------------------------------------------

metrics::BenchResult sample_result() {
  metrics::BenchResult r;
  r.experiment_id = "E1";
  r.bench = "bench_stages";
  r.title = "expected stages";
  r.quick = true;
  r.repeat = 3;
  r.seed0 = 7;
  r.claims.push_back({"C1", "mean <= 4", "mean = 2.25", true});
  r.claims.push_back({"C6", "more coins don't hurt", "1.97 vs 1.98", false});
  r.scalars.push_back({"worst_mean", 2.25, "stages"});
  r.timings.push_back({"total", 0.5, 3, 1});
  r.tables.push_back({"grid", "| n | mean |\n| 5 | 2.0 |\n"});
  return r;
}

TEST(BenchResultJson, RoundTripPreservesEveryField) {
  const auto original = sample_result();
  const auto restored =
      metrics::bench_result_from_json(json::parse(metrics::to_json(original)));

  EXPECT_EQ(restored.schema_version, metrics::kBenchSchemaVersion);
  EXPECT_EQ(restored.experiment_id, "E1");
  EXPECT_EQ(restored.bench, "bench_stages");
  EXPECT_EQ(restored.title, "expected stages");
  EXPECT_TRUE(restored.quick);
  EXPECT_EQ(restored.repeat, 3);
  EXPECT_EQ(restored.seed0, 7u);

  ASSERT_EQ(restored.claims.size(), 2u);
  EXPECT_EQ(restored.claims[0].claim_id, "C1");
  EXPECT_EQ(restored.claims[0].paper, "mean <= 4");
  EXPECT_EQ(restored.claims[0].measured, "mean = 2.25");
  EXPECT_TRUE(restored.claims[0].holds);
  EXPECT_FALSE(restored.claims[1].holds);
  EXPECT_EQ(metrics::claims_held(restored), 1);

  ASSERT_EQ(restored.scalars.size(), 1u);
  EXPECT_EQ(restored.scalars[0].name, "worst_mean");
  EXPECT_DOUBLE_EQ(restored.scalars[0].value, 2.25);
  EXPECT_EQ(restored.scalars[0].unit, "stages");

  ASSERT_EQ(restored.timings.size(), 1u);
  EXPECT_EQ(restored.timings[0].name, "total");
  EXPECT_DOUBLE_EQ(restored.timings[0].seconds, 0.5);
  EXPECT_EQ(restored.timings[0].repeats, 3);
  EXPECT_EQ(restored.timings[0].warmups, 1);

  ASSERT_EQ(restored.tables.size(), 1u);
  EXPECT_EQ(restored.tables[0].name, "grid");
  EXPECT_EQ(restored.tables[0].text, "| n | mean |\n| 5 | 2.0 |\n");
}

TEST(BenchResultJson, SerializationIsDeterministic) {
  EXPECT_EQ(metrics::to_json(sample_result()), metrics::to_json(sample_result()));
}

TEST(BenchResultJson, SchemaVersionMismatchRejected) {
  auto text = metrics::to_json(sample_result());
  const std::string needle = "\"schema_version\":1";
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"schema_version\":99");
  EXPECT_THROW(metrics::bench_result_from_json(json::parse(text)), CheckFailure);
}

}  // namespace
}  // namespace rcommit
