// Conformance tests tied to the paper's lemmas, verified against observed
// message traffic (via the broadcast spy) rather than just outcomes.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "adversary/basic.h"
#include "adversary/omniscient.h"
#include "common/rng.h"
#include "metrics/counters.h"
#include "protocol/agreement.h"
#include "sim/simulator.h"

namespace rcommit::protocol {
namespace {

using adversary::BroadcastSpy;
using adversary::SpiedSend;
using sim::RunStatus;
using sim::Simulator;

struct SpiedRun {
  sim::RunResult result;
  std::shared_ptr<BroadcastSpy> spy;
  /// All spied sends flattened: (sender, clock, info).
  std::vector<std::tuple<ProcId, Tick, SpiedSend>> sends;
  std::vector<int> decision_stages;
  std::vector<int> stages_completed;
};

/// Runs a standalone agreement fleet with the spy recording every broadcast.
SpiedRun run_spied(int n, const std::vector<int>& inputs,
                   const std::vector<uint8_t>& coins, uint64_t seed, Tick max_delay) {
  SystemParams params{.n = n, .t = (n - 1) / 2, .k = 2};
  auto spy = std::make_shared<BroadcastSpy>();
  auto sends = std::make_shared<std::vector<std::tuple<ProcId, Tick, SpiedSend>>>();
  std::vector<std::unique_ptr<sim::Process>> fleet;
  for (int i = 0; i < n; ++i) {
    AgreementProcess::Options options;
    options.params = params;
    options.initial_value = inputs[static_cast<size_t>(i)];
    options.coins = coins;
    options.observer = [spy, sends, i](Tick clock, int phase, int stage, int value) {
      spy->record(i, clock, SpiedSend{phase, stage, value});
      sends->emplace_back(i, clock, SpiedSend{phase, stage, value});
    };
    fleet.push_back(std::make_unique<AgreementProcess>(std::move(options)));
  }
  Simulator sim({.seed = seed}, std::move(fleet),
                adversary::make_random_adversary(seed + 5, max_delay));
  SpiedRun run;
  run.result = sim.run();
  run.spy = spy;
  run.sends = *sends;
  for (const auto& proc : sim.processes()) {
    const auto& core = dynamic_cast<const AgreementProcess&>(*proc).core();
    run.decision_stages.push_back(core.decision_stage());
    run.stages_completed.push_back(core.stages_completed());
  }
  return run;
}

std::vector<int> mixed_inputs(int n, uint64_t seed) {
  RandomTape rng(seed);
  std::vector<int> inputs(static_cast<size_t>(n));
  for (auto& v : inputs) v = rng.flip();
  return inputs;
}

std::vector<uint8_t> coins_for(int n, uint64_t seed) {
  RandomTape rng(seed ^ 0xc0);
  return rng.flip_bits(n);
}

// --- Lemma 2: at most one S-message value per stage --------------------------------

TEST(Lemma2, UniqueSValuePerStageAcrossManyRuns) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const int n = 5;
    const auto run = run_spied(n, mixed_inputs(n, seed), coins_for(n, seed), seed, 4);
    ASSERT_EQ(run.result.status, RunStatus::kAllDecided) << "seed " << seed;
    // Collect S-message values per stage from the spied traffic.
    std::map<int, std::set<int>> s_values;
    for (const auto& [sender, clock, info] : run.sends) {
      if (info.phase == 2 && info.value != kBottom) {
        s_values[info.stage].insert(info.value);
      }
    }
    for (const auto& [stage, values] : s_values) {
      EXPECT_LE(values.size(), 1u)
          << "two S-values in stage " << stage << " at seed " << seed;
    }
  }
}

// --- Lemma 1: unanimous local values decide within the stage -------------------------

TEST(Lemma1, UnanimousFirstStageSendsOnlyThatValue) {
  for (int value : {0, 1}) {
    const int n = 7;
    std::vector<int> inputs(7, value);
    const auto run = run_spied(n, inputs, coins_for(n, 3), 11, 3);
    ASSERT_EQ(run.result.status, RunStatus::kAllDecided);
    for (const auto& [sender, clock, info] : run.sends) {
      if (info.phase == 1 && info.stage == 1) {
        EXPECT_EQ(info.value, value);
      }
      if (info.phase == 2 && info.stage == 1) {
        EXPECT_EQ(info.value, value) << "no ⊥ possible from a unanimous stage";
      }
    }
    for (int stage : run.decision_stages) EXPECT_EQ(stage, 1);
  }
}

// --- Lemma 3: deciders within one stage (traffic-level restatement) -------------------

TEST(Lemma3, NoProcessorLagsMoreThanOneStageAtDecision) {
  for (uint64_t seed = 50; seed <= 80; ++seed) {
    const int n = 7;
    const auto run = run_spied(n, mixed_inputs(n, seed), coins_for(n, seed), seed, 5);
    ASSERT_EQ(run.result.status, RunStatus::kAllDecided) << "seed " << seed;
    int min_stage = INT32_MAX;
    int max_stage = 0;
    for (int stage : run.decision_stages) {
      if (stage == 0) continue;  // decided via DECIDED short-circuit
      min_stage = std::min(min_stage, stage);
      max_stage = std::max(max_stage, stage);
    }
    if (max_stage > 0 && min_stage != INT32_MAX) {
      EXPECT_LE(max_stage - min_stage, 1) << "seed " << seed;
    }
  }
}

// --- Lemma 4 / MATCH: a coin-only stage with matching coins unifies values ------------

TEST(Lemma4, CoinStageWithSharedCoinsUnifiesLocalValues) {
  // With shared coins, any stage in which *every* second-phase message was ⊥
  // makes all processors adopt coins[s]; the next stage's first-phase
  // messages must therefore be unanimous.
  for (uint64_t seed = 100; seed <= 140; ++seed) {
    const int n = 5;
    const auto coins = coins_for(n, seed);
    const auto run = run_spied(n, mixed_inputs(n, seed), coins, seed, 4);
    ASSERT_EQ(run.result.status, RunStatus::kAllDecided) << "seed " << seed;

    // Organize the spied traffic per stage.
    std::map<int, std::vector<int>> phase2_values;  // stage -> values (⊥ incl.)
    std::map<int, std::set<int>> phase1_values;     // stage -> distinct values
    for (const auto& [sender, clock, info] : run.sends) {
      if (info.phase == 2) phase2_values[info.stage].push_back(info.value);
      if (info.phase == 1) phase1_values[info.stage].insert(info.value);
    }
    for (const auto& [stage, values] : phase2_values) {
      const bool all_bottom = std::all_of(values.begin(), values.end(),
                                          [](int v) { return v == kBottom; });
      if (!all_bottom) continue;
      // MATCH(stage) is deterministic here (everyone reads coins[stage]):
      // the next stage's broadcasts must all carry coins[stage].
      auto next = phase1_values.find(stage + 1);
      if (next == phase1_values.end()) continue;  // run ended first
      ASSERT_LE(static_cast<size_t>(stage), coins.size());
      const int expected = coins[static_cast<size_t>(stage - 1)] != 0 ? 1 : 0;
      EXPECT_EQ(next->second.size(), 1u) << "stage " << stage << " seed " << seed;
      EXPECT_TRUE(next->second.count(expected) == 1)
          << "stage " << stage << " seed " << seed;
    }
  }
}

// --- Lemma 6: stages cost at most ~2 rounds each ---------------------------------------

TEST(Lemma6, DecisionRoundBoundedByTwoPerStagePlusStartup) {
  for (uint64_t seed = 150; seed <= 170; ++seed) {
    const int n = 5;
    const auto run = run_spied(n, mixed_inputs(n, seed), coins_for(n, seed), seed, 3);
    ASSERT_EQ(run.result.status, RunStatus::kAllDecided) << "seed " << seed;
    const auto m = metrics::measure_run(run.result, /*k=*/2);
    int max_stage = 1;
    for (int stage : run.decision_stages) max_stage = std::max(max_stage, stage);
    // Round 1 covers startup; each stage adds at most 2 rounds (Lemma 6),
    // plus one round of slack for the decision step itself.
    EXPECT_LE(m.max_decision_round, 2 * max_stage + 2)
        << "seed " << seed << " stages=" << max_stage;
  }
}

}  // namespace
}  // namespace rcommit::protocol
