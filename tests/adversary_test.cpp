// Unit tests for the adversary library: scheduling fairness, delay models,
// crash plans, partitions, targeted lateness, the quorum staller, and the
// omniscient split-vote adversary's stalling machinery.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "adversary/adaptive.h"
#include "adversary/basic.h"
#include "adversary/crash.h"
#include "adversary/latemsg.h"
#include "adversary/omniscient.h"
#include "adversary/partition.h"
#include "adversary/stretch.h"
#include "common/check.h"
#include "protocol/agreement.h"
#include "sim/ontime.h"
#include "sim/simulator.h"

namespace rcommit::adversary {
namespace {

using sim::Envelope;
using sim::MessageBase;
using sim::Process;
using sim::RunStatus;
using sim::Simulator;
using sim::StepContext;

/// Payload used by the scripted processes below.
class Ping final : public MessageBase {
 public:
  [[nodiscard]] std::string debug_string() const override { return "ping"; }
};

/// Broadcasts one ping, counts receipts, decides after hearing from all.
class Chatter final : public Process {
 public:
  void on_step(StepContext& ctx, std::span<const Envelope> delivered) override {
    if (!sent_) {
      sent_ = true;
      ctx.broadcast(sim::make_message<Ping>());
    }
    for (const auto& env : delivered) senders_.insert(env.from);
    if (static_cast<int32_t>(senders_.size()) == ctx.n()) decided_ = true;
  }
  [[nodiscard]] bool decided() const override { return decided_; }
  [[nodiscard]] Decision decision() const override { return Decision::kCommit; }

 private:
  bool sent_ = false;
  std::set<ProcId> senders_;
  bool decided_ = false;
};

std::vector<std::unique_ptr<Process>> chatter_fleet(int n) {
  std::vector<std::unique_ptr<Process>> fleet;
  for (int i = 0; i < n; ++i) fleet.push_back(std::make_unique<Chatter>());
  return fleet;
}

// --- delay models -----------------------------------------------------------------

TEST(DelayModels, FixedDelayIsConstant) {
  FixedDelay model(3);
  RandomTape rng(1);
  sim::PendingInfo msg{};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(model.delay_for(msg, rng), 3);
}

TEST(DelayModels, UniformDelayWithinBounds) {
  UniformDelay model(2, 7);
  RandomTape rng(2);
  sim::PendingInfo msg{};
  for (int i = 0; i < 500; ++i) {
    const Tick d = model.delay_for(msg, rng);
    EXPECT_GE(d, 2);
    EXPECT_LE(d, 7);
  }
}

TEST(DelayModels, UniformDelayValidatesBounds) {
  EXPECT_THROW(UniformDelay(5, 2), CheckFailure);
}

TEST(DelayModels, MostlyOnTimeRespectsRates) {
  MostlyOnTimeDelay model(/*k=*/4, /*p_late=*/0.25, /*max_late=*/20);
  RandomTape rng(3);
  sim::PendingInfo msg{};
  int late = 0;
  constexpr int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    const Tick d = model.delay_for(msg, rng);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 20);
    if (d > 4) ++late;
  }
  EXPECT_GT(late, kTrials / 8);
  EXPECT_LT(late, kTrials / 2);
}

TEST(DelayModels, MostlyOnTimeValidates) {
  EXPECT_THROW(MostlyOnTimeDelay(4, 1.5, 20), CheckFailure);
  EXPECT_THROW(MostlyOnTimeDelay(4, 0.1, 4), CheckFailure);
}

// --- fairness of schedulers ---------------------------------------------------------

TEST(ScheduleAdversary, RoundRobinStepsEveryoneEqually) {
  Simulator sim({.seed = 1, .max_events = 100}, chatter_fleet(4),
                make_on_time_adversary());
  const auto result = sim.run();
  std::vector<int> steps(4, 0);
  for (const auto& ev : result.trace.events) ++steps[static_cast<size_t>(ev.proc)];
  const int max_steps = *std::max_element(steps.begin(), steps.end());
  const int min_steps = *std::min_element(steps.begin(), steps.end());
  EXPECT_LE(max_steps - min_steps, 1);
}

TEST(ScheduleAdversary, RandomPermutationStepsEveryoneFairly) {
  Simulator sim({.seed = 2, .max_events = 400}, chatter_fleet(4),
                std::make_unique<ScheduleAdversary>(
                    SchedulingOrder::kRandomPermutation,
                    std::make_unique<UniformDelay>(1, 3), /*seed=*/9));
  const auto result = sim.run();
  std::vector<int> steps(4, 0);
  for (const auto& ev : result.trace.events) ++steps[static_cast<size_t>(ev.proc)];
  // Permutation cycles: step counts differ by at most 1 per full run.
  const int max_steps = *std::max_element(steps.begin(), steps.end());
  const int min_steps = *std::min_element(steps.begin(), steps.end());
  EXPECT_LE(max_steps - min_steps, 1);
}

TEST(ScheduleAdversary, Delay1IsOnTimeForK1) {
  Simulator sim({.seed = 3}, chatter_fleet(5), make_on_time_adversary());
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_TRUE(sim::is_on_time(result.trace, 1));
}

// --- crash plans ---------------------------------------------------------------------

TEST(CrashPlans, RandomPlansRespectCount) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const auto plans = random_crash_plans(seed, 9, 4, 50);
    EXPECT_EQ(plans.size(), 4u);
    std::set<ProcId> victims;
    for (const auto& p : plans) {
      victims.insert(p.victim);
      EXPECT_GE(p.at_clock, 1);
      EXPECT_LE(p.at_clock, 50);
    }
    EXPECT_EQ(victims.size(), 4u) << "victims must be distinct";
  }
}

TEST(CrashPlans, ZeroCountYieldsNoPlans) {
  EXPECT_TRUE(random_crash_plans(1, 5, 0, 10).empty());
  EXPECT_THROW(random_crash_plans(1, 5, 6, 10), CheckFailure);
}

TEST(CrashAdversary, VictimStopsAtPlannedClock) {
  // Crash processor 2 at its second step — before the chatter fleet can
  // finish (it decides around clock 2, so a later crash would never fire).
  std::vector<CrashPlan> plans{{.victim = 2, .at_clock = 2, .suppress_sends_to = {}}};
  Simulator sim({.seed = 4, .max_events = 200}, chatter_fleet(3),
                std::make_unique<CrashAdversary>(make_on_time_adversary(),
                                                 std::move(plans)));
  const auto result = sim.run();
  EXPECT_TRUE(result.crashed[2]);
  Tick final_clock = 0;
  for (const auto& ev : result.trace.events) {
    if (ev.proc == 2 && !ev.crash) final_clock = std::max(final_clock, ev.clock_after);
  }
  EXPECT_LT(final_clock, 2);
}

// --- partition ------------------------------------------------------------------------

TEST(Partition, PermanentPartitionWithholdsIntergroupMessages) {
  auto adv = std::make_unique<PartitionAdversary>(std::vector<ProcId>{0, 1},
                                                  PartitionAdversary::kNever);
  Simulator sim({.seed = 5, .max_events = 400}, chatter_fleet(4), std::move(adv));
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kEventLimit);  // nobody hears everyone
  for (const auto& m : result.trace.messages) {
    const bool intergroup = (m.from <= 1) != (m.to <= 1);
    if (intergroup) {
      EXPECT_FALSE(m.received()) << "intergroup message leaked";
    }
  }
}

TEST(Partition, HealedPartitionDelivers) {
  auto adv = std::make_unique<PartitionAdversary>(std::vector<ProcId>{0, 1},
                                                  /*heal_at_event=*/60);
  Simulator sim({.seed = 6, .max_events = 4000}, chatter_fleet(4), std::move(adv));
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kAllDecided);
}

// --- targeted lateness -------------------------------------------------------------------

TEST(LateMessage, DelaysExactlyTheMatchedOrdinal) {
  // Each Chatter broadcasts once, so the 0th message on the 0->1 link is the
  // only one; delay it and verify it is the unique late message for K = 2.
  LateRule rule{.from = 0, .to = 1, .nth = 0, .extra_delay = 30};
  Simulator sim({.seed = 7, .max_events = 4000}, chatter_fleet(3),
                std::make_unique<LateMessageAdversary>(std::vector<LateRule>{rule}));
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kAllDecided);
  EXPECT_EQ(sim::late_message_count(result.trace, 2), 1);
}

TEST(LateMessage, EveryMessageRuleDelaysWholeLink) {
  LateRule rule{.from = 0, .to = 1, .nth = LateRule::kEveryMessage, .extra_delay = 10};
  Simulator sim({.seed = 8, .max_events = 4000}, chatter_fleet(3),
                std::make_unique<LateMessageAdversary>(std::vector<LateRule>{rule}));
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& m : result.trace.messages) {
    if (m.from == 0 && m.to == 1 && m.received()) {
      EXPECT_GE(m.receiver_clock - m.sender_clock, 9);
    }
  }
}

// --- stretch -------------------------------------------------------------------------------

TEST(Stretch, UniformDelayScalesReceiptClocks) {
  Simulator sim({.seed = 9, .max_events = 4000}, chatter_fleet(3),
                std::make_unique<DelayStretchAdversary>(12));
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kAllDecided);
  for (const auto& m : result.trace.messages) {
    if (m.received() && m.from != m.to) {
      EXPECT_GE(m.receiver_clock - m.sender_clock, 10);
    }
  }
}

TEST(Stretch, RejectsNonPositiveDelay) {
  EXPECT_THROW(DelayStretchAdversary adv(0), CheckFailure);
}

// --- quorum staller -----------------------------------------------------------------------

TEST(QuorumStaller, SlowSetMessagesArriveMuchLater) {
  auto adv = std::make_unique<QuorumStallAdversary>(/*t=*/1, /*slow_lag=*/40, /*seed=*/3);
  Simulator sim({.seed = 10, .max_events = 6000}, chatter_fleet(4), std::move(adv));
  const auto result = sim.run();
  EXPECT_EQ(result.status, RunStatus::kAllDecided);
  // Some messages must have been slowed by ~40 recipient steps.
  Tick max_lag = 0;
  for (const auto& m : result.trace.messages) {
    if (m.received()) max_lag = std::max(max_lag, m.receiver_clock - m.sender_clock);
  }
  EXPECT_GE(max_lag, 30);
}

// --- omniscient split-vote --------------------------------------------------------------------

TEST(BroadcastSpy, RecordsAndLooksUpInOrder) {
  BroadcastSpy spy;
  spy.record(1, 5, {1, 2, 0});
  spy.record(1, 5, {2, 2, -1});
  const auto& sends = spy.lookup_all(1, 5);
  ASSERT_EQ(sends.size(), 2u);
  EXPECT_EQ(sends[0].phase, 1);
  EXPECT_EQ(sends[1].phase, 2);
  EXPECT_TRUE(spy.lookup_all(1, 6).empty());
  EXPECT_TRUE(spy.lookup_all(2, 5).empty());
}

TEST(SplitVote, StallsLocalCoinsLongerThanSharedCoins) {
  // Small-scale version of bench E6: with n = 6 and split inputs, local
  // coins need noticeably more stages than shared coins against the same
  // adversary.
  auto run_variant = [](bool shared, uint64_t seed) {
    const SystemParams params{.n = 6, .t = 2, .k = 1};
    auto spy = std::make_shared<BroadcastSpy>();
    RandomTape coin_rng(seed);
    std::vector<uint8_t> coins;
    if (shared) coins = coin_rng.flip_bits(512);
    std::vector<std::unique_ptr<Process>> fleet;
    for (int i = 0; i < 6; ++i) {
      protocol::AgreementProcess::Options options;
      options.params = params;
      options.initial_value = i % 2;
      options.coins = coins;
      options.observer = [spy, i](Tick clock, int phase, int stage, int value) {
        spy->record(i, clock, SpiedSend{phase, stage, value});
      };
      fleet.push_back(std::make_unique<protocol::AgreementProcess>(std::move(options)));
    }
    Simulator sim({.seed = seed, .max_events = 600'000}, std::move(fleet),
                  std::make_unique<SplitVoteAdversary>(spy, params.t));
    const auto result = sim.run();
    EXPECT_EQ(result.status, RunStatus::kAllDecided);
    EXPECT_FALSE(result.has_conflicting_decisions());
    int max_stage = 0;
    for (const auto& proc : sim.processes()) {
      const auto& core =
          dynamic_cast<const protocol::AgreementProcess&>(*proc).core();
      max_stage = std::max(max_stage, core.decision_stage());
    }
    return max_stage;
  };

  int64_t local_total = 0;
  int64_t shared_total = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    local_total += run_variant(false, seed);
    shared_total += run_variant(true, seed);
  }
  EXPECT_LE(shared_total, 10 * 3);          // constant: ~2 stages each
  EXPECT_GT(local_total, 2 * shared_total);  // exponential-vs-constant gap
}

TEST(SplitVote, SafetyHoldsUnderTheStall) {
  // Even this stronger-than-model adversary cannot make Protocol 1 decide
  // two values.
  const SystemParams params{.n = 4, .t = 1, .k = 1};
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    auto spy = std::make_shared<BroadcastSpy>();
    std::vector<std::unique_ptr<Process>> fleet;
    for (int i = 0; i < 4; ++i) {
      protocol::AgreementProcess::Options options;
      options.params = params;
      options.initial_value = i % 2;
      options.observer = [spy, i](Tick clock, int phase, int stage, int value) {
        spy->record(i, clock, SpiedSend{phase, stage, value});
      };
      fleet.push_back(std::make_unique<protocol::AgreementProcess>(std::move(options)));
    }
    Simulator sim({.seed = seed, .max_events = 300'000}, std::move(fleet),
                  std::make_unique<SplitVoteAdversary>(spy, params.t));
    const auto result = sim.run();
    EXPECT_FALSE(result.has_conflicting_decisions()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rcommit::adversary
